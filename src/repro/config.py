"""Simulated system configuration (paper Table 1).

The paper evaluates 16- and 64-core tiled chip multiprocessors: private
32KB L1 data caches, a shared NUCA L2 (one bank per tile), four on-chip
memory controllers, and a 2D mesh with 16-bit flits.  Latencies are given
as ranges (min at zero mesh hops, max at the farthest tile); the latency
model in :mod:`repro.noc.mesh` interpolates linearly over round-trip hops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LatencyRange:
    """A [min, max] latency range from Table 1, in cycles.

    ``min`` applies when the target is zero mesh hops away and ``max`` when
    it is at the maximum round-trip distance for the mesh.
    """

    min: int
    max: int

    def interpolate(self, hops: int, max_hops: int) -> int:
        """Latency at ``hops`` one-way mesh hops (of ``max_hops`` possible)."""
        if max_hops <= 0:
            return self.min
        span = self.max - self.min
        return self.min + round(span * min(hops, max_hops) / max_hops)


@dataclass(frozen=True)
class BackoffConfig:
    """DeNovoSync hardware-backoff parameters (paper section 5.2).

    * ``counter_bits``: size of the per-core backoff counter; the counter
      wraps to zero on overflow.
    * ``default_increment``: initial/reset value of the increment counter.
    * ``update_period``: the increment counter grows by ``default_increment``
      on every ``update_period``-th incoming remote sync-read registration
      request (the paper uses the core count).
    """

    counter_bits: int
    default_increment: int
    update_period: int

    def __post_init__(self) -> None:
        # The hardware wrap in repro.protocols.backoff masks the counter
        # with ``counter_max``, which is only a correct bit mask when it is
        # of the form 2^k - 1 with k >= 1; that requires a positive whole
        # number of counter bits.
        if not isinstance(self.counter_bits, int) or self.counter_bits < 1:
            raise ValueError(
                f"counter_bits must be a positive integer, got {self.counter_bits!r}"
            )
        if self.update_period < 1:
            raise ValueError(
                f"update_period must be >= 1, got {self.update_period!r}"
            )
        if self.default_increment < 0:
            raise ValueError(
                f"default_increment must be non-negative, got {self.default_increment!r}"
            )

    @property
    def counter_max(self) -> int:
        """All-ones mask of the counter's bit width (2^k - 1 by construction)."""
        return (1 << self.counter_bits) - 1


@dataclass(frozen=True)
class ProtocolTuning:
    """Micro-architectural calibration constants, exposed for sensitivity
    studies (see ``benchmarks/bench_ext_sensitivity.py``).

    * ``bank_occupancy``: LLC bank busy cycles for a clean (no third
      party) transaction.
    * ``ownership_occupancy``: cycles a MESI directory entry stays blocked
      for an ownership transaction (owner forward / invalidation
      collection); the rest of the unblock round trip is tracked in
      MSHRs.  DeNovo's registry never blocks.
    * ``chain_link_cost``: per-link serialization of DeNovo's distributed
      registration queue (the MSHR hand-off; the network legs of
      consecutive forwards overlap).
    * ``store_aggregation_window``: cycles within which DeNovo data
      stores to one line combine into a single registration message.
    * ``inv_processing``: sharer-side processing added to a MESI
      invalidation round trip.
    * ``self_invalidate_latency``: cycles for DeNovo's flash
      self-invalidation instruction.
    * ``neat_flush_line_cost``: per-dirty-line cycles of Neat's
      self-downgrade flush at a release boundary.
    * ``sync_unit_occupancy``: cycles one SynCron per-bank sync unit is
      busy per synchronization operation (its serialization grain).
    * ``sync_unit_entries``: bounded capacity of a SynCron sync unit's
      variable buffer; inserting into a full buffer spills the LRU
      entry to memory (the overflow fallback).
    """

    bank_occupancy: int = 4
    ownership_occupancy: int = 16
    chain_link_cost: int = 4
    store_aggregation_window: int = 200
    inv_processing: int = 4
    self_invalidate_latency: int = 1
    neat_flush_line_cost: int = 2
    sync_unit_occupancy: int = 4
    sync_unit_entries: int = 64


#: Valid settings for :attr:`SystemConfig.invariant_level`.
INVARIANT_LEVELS = ("off", "sampled", "full")


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated-system parameters for one experiment.

    Defaults correspond to the paper's 16-core configuration; use
    :func:`config_16` / :func:`config_64` for the published setups.

    ``invariant_level`` arms the runtime coherence invariant checker
    (:mod:`repro.protocols.invariants`): ``off`` disables it, ``sampled``
    audits the full protocol state every ``invariant_sample_period``
    operations, ``full`` audits before every operation.

    ``epoch_mode`` selects the engine's batched epoch run loop plus the
    spin fast-forward leases (see :mod:`repro.sim.engine`); results are
    byte-identical either way — the flag exists as an escape hatch
    (CLI ``--no-epoch``) and for perf A/B runs.
    """

    num_cores: int = 16
    line_bytes: int = 64
    word_bytes: int = 4
    l1_bytes: int = 32 * 1024
    l1_assoc: int = 8
    l2_banks: int = 16
    flit_bits: int = 16
    l1_hit_latency: int = 1
    l2_hit_latency: LatencyRange = field(default_factory=lambda: LatencyRange(28, 68))
    remote_l1_latency: LatencyRange = field(default_factory=lambda: LatencyRange(37, 97))
    memory_latency: LatencyRange = field(default_factory=lambda: LatencyRange(197, 277))
    backoff: BackoffConfig = field(
        default_factory=lambda: BackoffConfig(
            counter_bits=9, default_increment=1, update_period=16
        )
    )
    tuning: ProtocolTuning = field(default_factory=ProtocolTuning)
    invariant_level: str = "off"
    invariant_sample_period: int = 64
    epoch_mode: bool = True

    def __post_init__(self) -> None:
        side = math.isqrt(self.num_cores)
        if side * side != self.num_cores:
            raise ValueError(
                f"num_cores must be a perfect square for a 2D mesh, got {self.num_cores}"
            )
        if self.line_bytes % self.word_bytes:
            raise ValueError("line_bytes must be a multiple of word_bytes")
        if self.invariant_level not in INVARIANT_LEVELS:
            raise ValueError(
                f"invariant_level must be one of {INVARIANT_LEVELS}, "
                f"got {self.invariant_level!r}"
            )
        if self.invariant_sample_period < 1:
            raise ValueError(
                f"invariant_sample_period must be >= 1, "
                f"got {self.invariant_sample_period!r}"
            )

    @property
    def mesh_side(self) -> int:
        """Width/height of the square mesh of tiles."""
        return math.isqrt(self.num_cores)

    @property
    def max_hops(self) -> int:
        """Maximum one-way Manhattan distance across the mesh."""
        return 2 * (self.mesh_side - 1)

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // self.word_bytes

    @property
    def l1_lines(self) -> int:
        return self.l1_bytes // self.line_bytes

    @property
    def l1_sets(self) -> int:
        return self.l1_lines // self.l1_assoc


def config_16(**overrides) -> SystemConfig:
    """The paper's 16-core system (Table 1)."""
    params = dict(
        num_cores=16,
        l2_banks=16,
        l2_hit_latency=LatencyRange(28, 68),
        remote_l1_latency=LatencyRange(37, 97),
        memory_latency=LatencyRange(197, 277),
        backoff=BackoffConfig(counter_bits=9, default_increment=1, update_period=16),
    )
    params.update(overrides)
    return SystemConfig(**params)


def config_64(**overrides) -> SystemConfig:
    """The paper's 64-core system (Table 1)."""
    params = dict(
        num_cores=64,
        l2_banks=64,
        l2_hit_latency=LatencyRange(28, 140),
        remote_l1_latency=LatencyRange(37, 205),
        memory_latency=LatencyRange(197, 421),
        backoff=BackoffConfig(counter_bits=12, default_increment=64, update_period=64),
    )
    params.update(overrides)
    return SystemConfig(**params)


def config_for_cores(num_cores: int, **overrides) -> SystemConfig:
    """Config for an arbitrary (perfect-square) core count.

    Uses the published 16/64-core parameters where they exist and scales the
    backoff/update parameters with the core count otherwise, following the
    paper's guidance that the update period should track the core count.
    """
    if num_cores == 16:
        return config_16(**overrides)
    if num_cores == 64:
        return config_64(**overrides)
    base = config_16() if num_cores < 64 else config_64()
    params = dict(
        num_cores=num_cores,
        l2_banks=num_cores,
        l2_hit_latency=base.l2_hit_latency,
        remote_l1_latency=base.remote_l1_latency,
        memory_latency=base.memory_latency,
        backoff=BackoffConfig(
            counter_bits=base.backoff.counter_bits,
            default_increment=base.backoff.default_increment,
            update_period=num_cores,
        ),
    )
    params.update(overrides)
    return SystemConfig(**params)
