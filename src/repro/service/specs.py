"""Wire format of sweep cells: JSON dicts <-> :class:`RunSpec`.

A submitted cell is a JSON object::

    {
      "workload": ["kernel", "tatas", "counter", [120, 0.02, false], [], true],
      "protocol": "MESI",
      "config":   {... every SystemConfig field ...},   # or "cores": 16
      "seed":     1,
      "max_events": 40000000
    }

``workload`` is the same nested-tuple descriptor
:func:`repro.harness.parallel.kernel_cell` / ``app_cell`` produce (JSON
coerces tuples to lists; :func:`spec_from_dict` coerces them back, and the
cache key is insensitive to the difference because ``json.dumps``
serializes tuples and lists identically).  ``config`` may be omitted in
favour of a bare ``cores`` count, in which case the paper configuration
for that core count is used — handy for handwritten ``curl`` payloads.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.config import (
    BackoffConfig,
    LatencyRange,
    ProtocolTuning,
    SystemConfig,
    config_for_cores,
)
from repro.harness.parallel import RunSpec
from repro.harness.runner import DEFAULT_MAX_EVENTS


def tuplify(value):
    """Recursively coerce JSON lists back into the tuples descriptors use."""
    if isinstance(value, (list, tuple)):
        return tuple(tuplify(item) for item in value)
    return value


def config_from_dict(payload: dict) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its ``dataclasses.asdict`` form."""
    data = dict(payload)
    for name in ("l2_hit_latency", "remote_l1_latency", "memory_latency"):
        if isinstance(data.get(name), dict):
            data[name] = LatencyRange(**data[name])
    if isinstance(data.get("backoff"), dict):
        data["backoff"] = BackoffConfig(**data["backoff"])
    if isinstance(data.get("tuning"), dict):
        data["tuning"] = ProtocolTuning(**data["tuning"])
    return SystemConfig(**data)


def spec_from_dict(payload: dict) -> RunSpec:
    """Parse one submitted cell; raises ``ValueError`` on a malformed one."""
    if not isinstance(payload, dict):
        raise ValueError(f"cell must be an object, got {type(payload).__name__}")
    try:
        workload = tuplify(payload["workload"])
        protocol = payload["protocol"]
    except KeyError as exc:
        raise ValueError(f"cell is missing required field {exc.args[0]!r}") from None
    if not isinstance(workload, tuple) or not workload:
        raise ValueError("cell 'workload' must be a non-empty descriptor list")
    if not isinstance(protocol, str):
        raise ValueError("cell 'protocol' must be a string")
    try:
        if payload.get("config") is not None:
            config = config_from_dict(payload["config"])
        else:
            config = config_for_cores(int(payload.get("cores", 16)))
        seed = int(payload.get("seed", 0))
        max_events = payload.get("max_events", DEFAULT_MAX_EVENTS)
        if max_events is not None:
            max_events = int(max_events)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"malformed cell: {exc}") from None
    return RunSpec(workload, protocol, config, seed=seed, max_events=max_events)


def spec_to_dict(spec: RunSpec) -> dict:
    """The JSON form of one cell (inverse of :func:`spec_from_dict`)."""
    return {
        "workload": spec.workload,
        "protocol": spec.protocol,
        "config": asdict(spec.config),
        "seed": spec.seed,
        "max_events": spec.max_events,
    }


def describe_workload(descriptor: tuple) -> str:
    """Short human label for a workload descriptor (job-status payloads)."""
    kind = descriptor[0] if descriptor else "?"
    if kind == "kernel" and len(descriptor) >= 3:
        return f"{descriptor[1]}/{descriptor[2]}"
    if kind in ("app", "app_selfinv") and len(descriptor) >= 2:
        return f"app/{descriptor[1]}"
    return "/".join(str(part) for part in descriptor[:3])
