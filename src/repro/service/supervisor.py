"""Worker-pool supervision: retries, crash attribution, deadlines, recycle.

The service treats failure as the common case.  A bare
:class:`~concurrent.futures.ProcessPoolExecutor` is *not* self-healing:
one worker death (OOM kill, segfault, SIGKILL) breaks the pool
permanently and fails every in-flight and future submission, and a hung
cell occupies a worker forever.  :class:`PoolSupervisor` wraps the pool
with a supervision loop that makes every cell **settle eventually**:

* **Crash recovery.**  When the pool breaks, the supervisor rebuilds it
  and re-submits the in-flight cells that were lost.  Attribution is by
  an on-disk *start marker* the worker touches before simulating: a cell
  whose marker exists when the pool broke **provably crashed
  mid-execution** and is charged one crash; after
  :attr:`RetryPolicy.max_crashes` charges it settles with a structured
  ``worker_crash`` error (a cell that reliably kills its worker must not
  crash-loop the pool forever).  Cells never observed running are
  innocent bystanders and are re-submitted without penalty.
* **Retry with backoff.**  A cell whose execution raises is retried up
  to :attr:`RetryPolicy.max_attempts` times with exponential backoff
  plus jitter (the same shape as the simulated hardware's own
  ``BackoffConfig``: a growing increment, bounded above) before settling
  with the final error.
* **Deadlines.**  A cell may carry a wall-clock execution budget,
  counted from the moment its start marker appears.  A cell that
  overruns settles as ``deadline_exceeded`` and the pool is *recycled*
  (workers killed and respawned) to free the hung worker — pool futures
  cannot be cancelled once running.
* **One outcome future.**  Each cell exposes a single
  :class:`asyncio.Future` (:attr:`CellTask.outcome`) that resolves only
  on the *terminal* outcome, after all retries — so any number of jobs
  can attach to the same in-flight cell and all of them observe the
  retried result, never an intermediate failure.

The supervisor is deliberately single-threaded: one asyncio task calls
:meth:`PoolSupervisor.step` every ``tick`` seconds, and *all* state
transitions happen inside ``step`` (or in ``submit``/``shutdown``, also
on the event loop).  Nothing here locks, and every transition is
observable and unit-testable by calling ``step()`` by hand.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import shutil
import tempfile
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable

from repro.harness.parallel import CellError, RunSpec, execute_spec
from repro.stats.collector import RunResult

#: Sentinel distinguishing "no deadline" (None) from "use the default".
_USE_DEFAULT = object()


def execute_cell(spec: RunSpec, marker_path: str) -> RunResult:
    """Worker-process entry point: stamp the start marker, then simulate.

    The marker is the supervisor's crash-attribution evidence — it is
    touched *before* any simulation work, so a worker that dies with the
    marker present provably died mid-execution of this cell.
    """
    try:
        Path(marker_path).touch()
    except OSError:
        pass  # spool dir gone (shutdown race); attribution degrades gracefully
    return execute_spec(spec)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff parameters for one supervised pool.

    ``delay`` follows the simulator's own hardware backoff shape
    (:class:`repro.config.BackoffConfig`): exponential growth from
    ``base_delay`` by ``multiplier`` per attempt, bounded by
    ``max_delay``, plus up to ``jitter`` fraction of random spread so
    retrying cells do not stampede a freshly rebuilt pool.
    """

    #: Total execution attempts for a cell whose run *raises* (the first
    #: attempt counts; ``1`` disables retries).
    max_attempts: int = 3
    #: Provable mid-execution worker deaths before a cell settles as
    #: ``worker_crash`` instead of being re-submitted.
    max_crashes: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.max_crashes < 1:
            raise ValueError(f"max_crashes must be >= 1, got {self.max_crashes!r}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("backoff delays and jitter must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1.0, got {self.multiplier!r}")

    def delay(self, failures: int, rng: random.Random) -> float:
        """Backoff before re-dispatching after the ``failures``-th failure."""
        base = min(self.max_delay, self.base_delay * self.multiplier ** max(0, failures - 1))
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class CellResolution:
    """The terminal outcome of one supervised cell.

    Exactly one of ``result`` / ``error`` is set.  ``error`` is a plain
    JSON-ready dict (``kind``, ``message``, ``traceback``, ``attempts``)
    so the server can ship it verbatim in job payloads; kinds beyond
    exception class names: ``worker_crash``, ``deadline_exceeded``,
    ``shutdown``.
    """

    spec: RunSpec
    key: str
    attempts: int
    result: RunResult | None = None
    error: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CellTask:
    """One supervised cell: identity, live attempt state, and the outcome."""

    spec: RunSpec
    key: str
    #: wall-clock execution budget in seconds (None: unlimited), counted
    #: from the moment the start marker is first observed.
    deadline: float | None
    #: resolves to a :class:`CellResolution` on the terminal outcome only.
    outcome: asyncio.Future
    attempts: int = 0
    #: execution attempts that raised (drives the retry budget).
    failures: int = 0
    #: provable mid-execution worker deaths (drives the crash budget).
    crashes: int = 0
    pool_future: Future | None = None
    marker: Path | None = None
    #: monotonic time the current attempt's marker was first observed.
    started_at: float | None = None
    #: monotonic time at which a backoff wait ends and the cell re-dispatches.
    retry_at: float | None = None
    last_error: CellError | None = None

    @property
    def phase(self) -> str:
        """``queued`` | ``running`` | ``backoff`` | ``settled``."""
        if self.outcome.done():
            return "settled"
        if self.pool_future is None:
            return "backoff"
        if self.started_at is not None or self.pool_future.running():
            return "running"
        return "queued"


class PoolSupervisor:
    """Owns the worker pool and every in-flight :class:`CellTask`.

    ``on_settle(resolution)`` runs synchronously *before* the task's
    outcome future resolves and before the task leaves the in-flight
    index — the executor uses it to persist successful results, so a
    submission processed after a cell settles always finds the cache
    entry, never a gap (the at-most-once-successful-simulation
    invariant).  ``on_counter(name, by)`` feeds the service metrics.
    """

    def __init__(
        self,
        *,
        workers: int,
        policy: RetryPolicy | None = None,
        tick: float = 0.05,
        default_deadline: float | None = None,
        worker_fn: Callable[[RunSpec, str], RunResult] = execute_cell,
        on_settle: Callable[[CellResolution], None] | None = None,
        on_counter: Callable[..., None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        rng_seed: int = 0x5EED,
    ) -> None:
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick!r}")
        self.workers = workers
        self.policy = policy or RetryPolicy()
        self.tick = tick
        self.default_deadline = default_deadline
        self.worker_fn = worker_fn
        self._on_settle = on_settle
        self._on_counter = on_counter
        self._clock = clock
        self._rng = random.Random(rng_seed)
        self._spool = Path(tempfile.mkdtemp(prefix="repro-sweep-spool-"))
        self._marker_ids = itertools.count(1)
        self._tasks: dict[str, CellTask] = {}
        self._pool: ProcessPoolExecutor | None = self._new_pool()
        self._runner: asyncio.Task | None = None
        self._closed = False
        #: lifetime counters, mirrored into /metrics via ``on_counter``.
        self.recycles = 0
        self.retries = 0
        self.crash_settles = 0
        self.deadline_settles = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the supervision loop on the running event loop."""
        if self._runner is None and not self._closed:
            self._runner = asyncio.get_running_loop().create_task(self._run())

    async def _run(self) -> None:
        while not self._closed:
            await asyncio.sleep(self.tick)
            try:
                self.step()
            except Exception as exc:  # pragma: no cover - supervision must survive
                import sys
                import traceback

                print(f"supervisor step failed: {exc!r}", file=sys.stderr)
                traceback.print_exc()

    def shutdown(self) -> None:
        """Harvest already-completed work, settle the rest, kill the pool.

        Results that finished in a worker but were not yet observed are
        settled (and thus persisted by ``on_settle``) **before** the pool
        goes down — completed simulations are never discarded.  Cells
        still running or queued settle with a ``shutdown`` error.
        """
        if self._closed:
            return
        self._closed = True
        if self._runner is not None:
            self._runner.cancel()
            self._runner = None
        self.harvest()
        for task in list(self._tasks.values()):
            self._settle(
                task,
                error=self._structured_error(
                    "shutdown",
                    "server shut down before the cell could finish",
                    task,
                ),
            )
        if self._pool is not None:
            self._kill_pool(self._pool)
            self._pool = None
        shutil.rmtree(self._spool, ignore_errors=True)

    def harvest(self) -> int:
        """Settle every task whose pool future already holds a real outcome
        (without scheduling retries or recycles); returns how many settled.
        Used on shutdown and by drain so completed work is never dropped."""
        settled = 0
        for task in list(self._tasks.values()):
            future = task.pool_future
            if future is None or not future.done():
                continue
            exc = future.exception()
            if exc is None:
                self._settle(task, result=future.result())
                settled += 1
            elif not isinstance(exc, BrokenExecutor) and self._closed:
                # Final pass: no retries left to schedule, record the error.
                task.failures += 1
                task.last_error = CellError.from_exception(exc)
                self._settle(task, error=self._transient_error(task))
                settled += 1
        return settled

    # -- submission ----------------------------------------------------------

    def get(self, key: str) -> CellTask | None:
        return self._tasks.get(key)

    def submit(self, spec: RunSpec, key: str, *, deadline=_USE_DEFAULT) -> CellTask:
        """Register one cell and dispatch its first attempt.  Must run on
        the event loop (all supervision state is loop-confined)."""
        if self._closed:
            raise RuntimeError("supervisor is shut down")
        if deadline is _USE_DEFAULT:
            deadline = self.default_deadline
        task = CellTask(
            spec=spec,
            key=key,
            deadline=deadline,
            outcome=asyncio.get_running_loop().create_future(),
        )
        self._tasks[key] = task
        self._dispatch(task)
        return task

    def _dispatch(self, task: CellTask) -> None:
        task.attempts += 1
        task.retry_at = None
        task.started_at = None
        self._discard_marker(task)
        task.marker = self._spool / f"{next(self._marker_ids):08d}.started"
        try:
            task.pool_future = self._pool.submit(
                self.worker_fn, task.spec, str(task.marker)
            )
        except BrokenExecutor:
            # The pool broke between ticks; rebuild it (which re-submits
            # every *other* in-flight cell) and dispatch into the fresh one.
            self._recycle(intentional=False)
            task.pool_future = self._pool.submit(
                self.worker_fn, task.spec, str(task.marker)
            )

    # -- the supervision pass ------------------------------------------------

    def step(self) -> None:
        """One supervision pass: crash recovery, completions, deadlines,
        and due retries.  Idempotent; every state transition lives here."""
        if self._closed:
            return
        if self._broken():
            self._recycle(intentional=False)
        now = self._clock()
        for task in list(self._tasks.values()):
            if task.outcome.done():
                continue
            future = task.pool_future
            if future is None:  # backing off between attempts
                if task.retry_at is not None and now >= task.retry_at:
                    self._dispatch(task)
                continue
            if future.done():
                self._observe_completion(task, future)
                continue
            if task.started_at is None and task.marker is not None:
                if task.marker.exists():
                    task.started_at = now
            if (
                task.deadline is not None
                and task.started_at is not None
                and now - task.started_at >= task.deadline
            ):
                self._deadline_exceeded(task)

    def _observe_completion(self, task: CellTask, future: Future) -> None:
        exc = future.exception()
        if exc is None:
            self._settle(task, result=future.result())
            return
        if isinstance(exc, BrokenExecutor):
            # A worker died between the broken-pool check and here; the
            # recycle pass on re-entry handles attribution for everyone.
            self._recycle(intentional=False)
            return
        # A real execution failure: retry with backoff, or settle.
        task.failures += 1
        task.last_error = CellError.from_exception(exc)
        if task.failures >= self.policy.max_attempts:
            self._settle(task, error=self._transient_error(task))
            return
        self.retries += 1
        self._count("cells_retried")
        task.pool_future = None
        task.retry_at = self._clock() + self.policy.delay(task.failures, self._rng)

    def _deadline_exceeded(self, task: CellTask) -> None:
        self.deadline_settles += 1
        self._count("cells_deadline_exceeded")
        self._settle(
            task,
            error=self._structured_error(
                "deadline_exceeded",
                f"cell exceeded its {task.deadline:g}s execution deadline "
                f"(attempt {task.attempts})",
                task,
            ),
        )
        # The worker running this cell cannot be preempted any other way:
        # recycle the pool to free it.  Innocent in-flight cells are
        # re-submitted without a crash charge.
        self._recycle(intentional=True)

    def _recycle(self, *, intentional: bool) -> None:
        """Kill and rebuild the pool, then re-submit lost in-flight cells.

        ``intentional`` recycles (deadline enforcement, health recovery)
        charge no one; an unintentional break charges a crash to every
        cell whose start marker proves it was mid-execution."""
        self.recycles += 1
        self._count("workers_recycled")
        survivors: list[CellTask] = []
        for task in list(self._tasks.values()):
            if task.outcome.done():
                continue
            future = task.pool_future
            if future is None:
                continue  # backing off; never touched the dead pool
            if future.done() and future.exception() is None:
                # Completed in a worker before the break: harvest, don't re-run.
                self._settle(task, result=future.result())
                continue
            if future.done() and not isinstance(future.exception(), BrokenExecutor):
                # A real failure that happened to land with the break.
                self._observe_completion(task, future)
                continue
            started = task.started_at is not None or (
                task.marker is not None and task.marker.exists()
            )
            if started and not intentional:
                task.crashes += 1
                if task.crashes >= self.policy.max_crashes:
                    self.crash_settles += 1
                    self._count("cells_crashed")
                    self._settle(
                        task,
                        error=self._structured_error(
                            "worker_crash",
                            f"worker died mid-execution {task.crashes} time(s) "
                            f"(over {task.attempts} attempt(s)); not re-submitting",
                            task,
                        ),
                    )
                    continue
            survivors.append(task)
        old_pool, self._pool = self._pool, self._new_pool()
        if old_pool is not None:
            self._kill_pool(old_pool)
        for task in survivors:
            self._dispatch(task)

    # -- settling ------------------------------------------------------------

    def _settle(
        self,
        task: CellTask,
        *,
        result: RunResult | None = None,
        error: dict | None = None,
    ) -> None:
        if task.outcome.done():
            return
        self._discard_marker(task)
        task.pool_future = None
        self._tasks.pop(task.key, None)
        resolution = CellResolution(
            spec=task.spec, key=task.key, attempts=task.attempts,
            result=result, error=error,
        )
        if self._on_settle is not None:
            try:
                self._on_settle(resolution)
            except Exception:  # pragma: no cover - the hook must not kill supervision
                pass
        task.outcome.set_result(resolution)

    def _transient_error(self, task: CellTask) -> dict:
        error = task.last_error.as_dict() if task.last_error else {
            "kind": "unknown", "message": "cell failed", "traceback": ""
        }
        error["attempts"] = task.attempts
        return error

    def _structured_error(self, kind: str, message: str, task: CellTask) -> dict:
        return {
            "kind": kind,
            "message": message,
            "traceback": "",
            "attempts": task.attempts,
        }

    # -- pool plumbing -------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _broken(self) -> bool:
        return bool(getattr(self._pool, "_broken", False))

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even when its workers are hung: SIGKILL every
        worker process, then release the executor's bookkeeping."""
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                if proc.is_alive():
                    proc.kill()
            except Exception:  # pragma: no cover - already-reaped process
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - interpreter-internal drift
            pass

    def _discard_marker(self, task: CellTask) -> None:
        if task.marker is not None:
            try:
                task.marker.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - spool dir already gone
                pass
            task.marker = None

    def _count(self, name: str, by: int = 1) -> None:
        if self._on_counter is not None:
            self._on_counter(name, by)

    # -- introspection -------------------------------------------------------

    def pending_count(self) -> int:
        """Unique cells supervised and not yet settled."""
        return len(self._tasks)

    def running_count(self) -> int:
        return sum(1 for task in self._tasks.values() if task.phase == "running")

    def worker_pids(self) -> list[int]:
        """Live worker-process pids (chaos harness and tests)."""
        processes = getattr(self._pool, "_processes", None) or {}
        pids = []
        for proc in list(processes.values()):
            try:
                if proc.is_alive() and proc.pid is not None:
                    pids.append(proc.pid)
            except Exception:  # pragma: no cover
                pass
        return pids

    def worker_health(self) -> dict:
        """Best-effort worker liveness: configured size, live processes,
        whether the pool has broken, and lifetime recovery counts."""
        pool = self._pool
        if pool is None or self._closed:
            return {
                "configured": self.workers, "alive": 0, "broken": False,
                "shutdown": True, "recycles": self.recycles,
            }
        processes = getattr(pool, "_processes", None) or {}
        try:
            alive = sum(1 for proc in processes.values() if proc.is_alive())
        except Exception:  # pragma: no cover - interpreter-internal drift
            alive = len(processes)
        return {
            "configured": self.workers,
            "alive": alive,
            "broken": self._broken(),
            "shutdown": False,
            "recycles": self.recycles,
        }
