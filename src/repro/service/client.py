"""Blocking stdlib client for the sweep service (CLI + tests).

Thin wrapper over :mod:`http.client`: every method opens one connection,
performs one request, and returns parsed JSON (or raw text for
``/metrics``).  Raises :class:`ServiceError` on non-2xx responses with
the server's error message attached.

The client is retry-aware where that is safe: **idempotent GETs**
(``healthz``, ``metrics``, ``jobs``, ``job``) are retried on
``ConnectionError`` (server restarting, worker-pool recycle pausing the
accept loop, transient network drop) with capped exponential backoff.
**POSTs are never retried** — a submission that died mid-flight may have
been accepted, and blind re-POSTing would double-submit the job (the
cells themselves would still dedupe, but the job registry would not).
``wait`` polls with capped exponential backoff instead of a fixed
interval, so a long job does not hammer the server while a short one is
still observed promptly.
"""

from __future__ import annotations

import http.client
import json
import time
from collections.abc import Iterable

from repro.harness.parallel import RunSpec
from repro.service.specs import spec_to_dict

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    ``retry_after`` carries the server's ``Retry-After`` hint (seconds)
    on HTTP 503 load-shed responses, None otherwise.
    """

    def __init__(
        self, status: int, message: str, retry_after: float | None = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 30.0,
        retries: int = 3,
        retry_delay: float = 0.1,
        sleep=time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: connection-error retries for idempotent GETs (POSTs never retry).
        self.retries = retries
        self.retry_delay = retry_delay
        self._sleep = sleep

    def _request_once(self, method: str, path: str, payload: dict | None = None):
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    message = json.loads(raw).get("error", raw.decode(errors="replace"))
                except (json.JSONDecodeError, AttributeError):
                    message = raw.decode(errors="replace")
                retry_after = None
                header = response.getheader("Retry-After")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        pass
                raise ServiceError(response.status, message, retry_after)
            return response, raw
        finally:
            connection.close()

    def _request(self, method: str, path: str, payload: dict | None = None):
        """One request with connection-error retries for idempotent GETs.

        ``http.client`` surfaces a dead or restarting server as
        ``ConnectionError`` subclasses (``ConnectionRefusedError``,
        ``ConnectionResetError``, ``RemoteDisconnected``); those are the
        only errors retried, and only for GET — a POST interrupted
        mid-flight may already have been accepted.
        """
        attempts = self.retries + 1 if method == "GET" else 1
        delay = self.retry_delay
        for attempt in range(1, attempts + 1):
            try:
                return self._request_once(method, path, payload)
            except ConnectionError:
                if attempt >= attempts:
                    raise
                self._sleep(delay)
                delay = min(2.0, delay * 2)

    def _json(self, method: str, path: str, payload: dict | None = None) -> dict:
        _, raw = self._request(method, path, payload)
        return json.loads(raw)

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        _, raw = self._request("GET", "/metrics")
        return raw.decode()

    def submit_cells(
        self, cells: list[dict], *, cell_deadline: float | None = None
    ) -> dict:
        payload: dict = {"cells": cells}
        if cell_deadline is not None:
            payload["cell_deadline"] = cell_deadline
        return self._json("POST", "/jobs", payload)

    def submit_specs(
        self, specs: Iterable[RunSpec], *, cell_deadline: float | None = None
    ) -> dict:
        return self.submit_cells(
            [spec_to_dict(spec) for spec in specs], cell_deadline=cell_deadline
        )

    def jobs(self) -> dict:
        return self._json("GET", "/jobs")

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        poll: float = 0.1,
        max_poll: float = 2.0,
    ) -> dict:
        """Poll ``/jobs/<id>`` until the job settles (done or failed),
        backing the poll interval off exponentially from ``poll`` up to
        ``max_poll`` so long jobs do not hammer the server."""
        deadline = time.monotonic() + timeout
        delay = poll
        while True:
            status = self.job(job_id)
            if status["status"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after {timeout}s "
                    f"(counts: {status['counts']})"
                )
            self._sleep(min(delay, max(0.0, deadline - time.monotonic())))
            delay = min(max_poll, delay * 1.6)
