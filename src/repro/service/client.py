"""Blocking stdlib client for the sweep service (CLI + tests).

Thin wrapper over :mod:`http.client`: every method opens one connection,
performs one request, and returns parsed JSON (or raw text for
``/metrics``).  Raises :class:`ServiceError` on non-2xx responses with
the server's error message attached.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterable, Optional

from repro.harness.parallel import RunSpec
from repro.service.specs import spec_to_dict

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: Optional[dict] = None):
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    message = json.loads(raw).get("error", raw.decode(errors="replace"))
                except (json.JSONDecodeError, AttributeError):
                    message = raw.decode(errors="replace")
                raise ServiceError(response.status, message)
            return response, raw
        finally:
            connection.close()

    def _json(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        _, raw = self._request(method, path, payload)
        return json.loads(raw)

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        _, raw = self._request("GET", "/metrics")
        return raw.decode()

    def submit_cells(self, cells: list[dict]) -> dict:
        return self._json("POST", "/jobs", {"cells": cells})

    def submit_specs(self, specs: Iterable[RunSpec]) -> dict:
        return self.submit_cells([spec_to_dict(spec) for spec in specs])

    def jobs(self) -> dict:
        return self._json("GET", "/jobs")

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def wait(self, job_id: str, *, timeout: float = 600.0, poll: float = 0.2) -> dict:
        """Poll ``/jobs/<id>`` until the job settles (done or failed)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after {timeout}s "
                    f"(counts: {status['counts']})"
                )
            time.sleep(poll)
