"""Service-level chaos harness: prove the sweep server self-heals.

This is the failure-mode counterpart of the protocol chaos sweep
(:mod:`repro.harness.chaos`): instead of perturbing the *simulated*
machine, it attacks the *service* — a live :class:`SweepService` with a
real worker pool — while a sweep is in flight:

* **worker murder**: SIGKILLs live worker processes mid-cell (the
  production shape of an OOM kill or segfault), which breaks the
  ``ProcessPoolExecutor`` outright;
* **poisoned cells**: cells whose materialization raises in the worker,
  exercising the retry/backoff path to a structured terminal failure;
* **slow cells**: cells whose simulation overruns the per-cell deadline,
  exercising deadline enforcement and the pool recycle that frees the
  hung worker.

The harness then asserts the service's self-healing contract:

1. every cell **settles** — ``done`` or structured ``failed`` (with the
   right error kind); no cell and no job is stuck ``running``;
2. the dedupe/cache invariant holds: each unique cell simulated **at
   most once successfully** (`cells_simulated` == freshly-run done
   cells), and an immediate resubmission of the surviving sweep is 100%
   cache hits;
3. recovery is observable: ``workers_recycled_total`` covers every kill
   and ``/healthz`` reports ``ok`` again after the storm;
4. the pool is *usable* afterwards: a fresh sweep submitted after all
   failures completes normally.

Run it via ``denovosync-bench chaos-service`` (the ``chaos-service-smoke``
CI job) or programmatically through :func:`run_service_chaos`.
"""

from __future__ import annotations

import asyncio
import os
import random
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.config import config_for_cores
from repro.harness.parallel import ResultCache, RunSpec, kernel_cell
from repro.protocols.registry import chaos_comparison_set
from repro.service.client import ServiceClient
from repro.service.server import SweepService
from repro.service.supervisor import RetryPolicy
from repro.workloads.base import KernelSpec

#: Kernel that does not exist: materialization raises ``KeyError`` inside
#: the worker on every attempt (a deterministically poisoned cell).
POISON_KERNEL = "chaos-no-such-kernel"


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos run: fault budget, sweep shape, and service tuning."""

    workers: int = 2
    #: SIGKILLs delivered to live workers while cells are running.
    kills: int = 2
    #: seconds between observing a running cell and pulling the trigger.
    kill_interval: float = 0.3
    cores: int = 16
    #: registry-derived default: every chaos-capable protocol.
    protocols: tuple = field(default_factory=chaos_comparison_set)
    kernels: tuple = ("counter", "stack")
    #: scale of the healthy cells — large enough that kills land mid-cell.
    scale: float = 0.3
    seed: int = 1
    #: cells that raise in the worker on every attempt (retry path).
    poison_cells: int = 1
    #: cells that overrun the deadline (deadline + recycle path).
    slow_cells: int = 1
    slow_scale: float = 8.0
    cell_deadline: float = 5.0
    max_retries: int = 3
    wait_timeout: float = 240.0
    #: result-cache directory; None uses a throwaway temp dir (cold cache).
    cache_dir: str | None = None


@dataclass
class ChaosReport:
    """Outcome of one chaos run: per-check verdicts and the evidence."""

    checks: list = field(default_factory=list)  # (name, ok, detail)
    kills_delivered: int = 0
    cells_total: int = 0
    counters: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append((name, bool(ok), detail))

    def describe(self) -> str:
        lines = [
            f"service chaos: {sum(ok for _, ok, _ in self.checks)}/"
            f"{len(self.checks)} checks passed, {self.kills_delivered} "
            f"worker kill(s) delivered over {self.cells_total} cells"
        ]
        for name, ok, detail in self.checks:
            mark = "ok " if ok else "FAIL"
            lines.append(f"  [{mark}] {name}" + (f": {detail}" if detail else ""))
        for name in (
            "cells_simulated", "cells_retried", "workers_recycled",
            "cells_crashed", "cells_deadline_exceeded", "cache_hits",
        ):
            if name in self.counters:
                lines.append(f"  {name}_total = {self.counters[name]}")
        return "\n".join(lines)


class _ServiceThread:
    """A live service with its event loop on a daemon thread — the same
    in-process production topology the e2e tests use."""

    def __init__(self, service: SweepService) -> None:
        self.service = service
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        self.host, self.port = self.call(service.start())

    def call(self, coro, timeout: float = 60.0):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    def close(self) -> None:
        try:
            self.call(self.service.stop())
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(10)
            self.loop.close()


def healthy_specs(config: ChaosConfig) -> list[RunSpec]:
    system = config_for_cores(config.cores)
    return [
        RunSpec(
            kernel_cell("tatas", name, KernelSpec(scale=config.scale)),
            protocol, system, seed=config.seed,
        )
        for name in config.kernels
        for protocol in config.protocols
    ]


def slow_specs(config: ChaosConfig) -> list[RunSpec]:
    system = config_for_cores(config.cores)
    return [
        RunSpec(
            kernel_cell("tatas", "counter", KernelSpec(scale=config.slow_scale)),
            "MESI", system, seed=config.seed + 9000 + i,
        )
        for i in range(config.slow_cells)
    ]


def poison_specs(config: ChaosConfig) -> list[RunSpec]:
    system = config_for_cores(config.cores)
    return [
        RunSpec(
            kernel_cell("tatas", POISON_KERNEL, KernelSpec(scale=config.scale)),
            "MESI", system, seed=config.seed + i,
        )
        for i in range(config.poison_cells)
    ]


def _kill_workers(
    service: SweepService,
    client: ServiceClient,
    job_id: str,
    config: ChaosConfig,
    rng: random.Random,
) -> int:
    """Deliver up to ``config.kills`` SIGKILLs, each only while at least
    one cell is provably running (so the kill lands mid-cell); gives up
    on a kill if the job settles first."""
    delivered = 0
    for _ in range(config.kills):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status = client.job(job_id)
            if status["status"] in ("done", "failed"):
                return delivered  # nothing left to murder mid-cell
            if service.executor.running_count() > 0:
                break
            time.sleep(0.02)
        time.sleep(config.kill_interval * (0.5 + rng.random()))
        pids = service.executor.worker_pids()
        if not pids:
            continue
        try:
            os.kill(rng.choice(pids), signal.SIGKILL)
            delivered += 1
        except (ProcessLookupError, PermissionError):
            continue  # worker exited between listing and killing
    return delivered


def run_service_chaos(config: ChaosConfig = ChaosConfig()) -> ChaosReport:
    """Run one full chaos scenario against a live in-process service."""
    report = ChaosReport()
    rng = random.Random(config.seed)
    cache_root = config.cache_dir or tempfile.mkdtemp(prefix="repro-chaos-cache-")
    owns_cache = config.cache_dir is None
    policy = RetryPolicy(
        max_attempts=config.max_retries,
        # A kill can charge a crash to every concurrently-running cell,
        # so the crash budget must exceed the kill budget for healthy
        # cells to be guaranteed to settle successfully.
        max_crashes=config.kills + 1,
        base_delay=0.05,
        max_delay=0.5,
    )
    service = SweepService(
        host="127.0.0.1", port=0, workers=config.workers,
        cache=ResultCache(cache_root), cell_deadline=config.cell_deadline,
        policy=policy, tick=0.02,
    )
    harness = _ServiceThread(service)
    client = ServiceClient(harness.host, harness.port, timeout=30.0)
    try:
        good = healthy_specs(config)
        slow = slow_specs(config)
        poison = poison_specs(config)
        specs = slow + poison + good  # doomed cells first: they start early
        report.cells_total = len(specs)

        job = client.submit_specs(specs)["job"]
        report.kills_delivered = _kill_workers(service, client, job, config, rng)
        status = client.wait(job, timeout=config.wait_timeout)

        cells = status["cell_details"]
        counts = status["counts"]
        report.record(
            "every cell settled",
            counts["queued"] == 0 and counts["running"] == 0,
            f"counts={counts}",
        )
        slow_cells = cells[: len(slow)]
        poison_cells_ = cells[len(slow): len(slow) + len(poison)]
        good_cells = cells[len(slow) + len(poison):]

        report.record(
            "healthy cells all done despite worker kills",
            all(c["status"] == "done" for c in good_cells),
            ", ".join(
                f"[{c['index']}] {c['status']}"
                + (f" ({c['error']['kind']})" if c["error"] else "")
                for c in good_cells
            ),
        )
        report.record(
            "poisoned cells settled failed after retry budget",
            all(
                c["status"] == "failed"
                and c["error"]["kind"] == "KeyError"
                # Dispatches can exceed the retry budget: pool recycles
                # re-submit a cell without consuming a (transient) retry.
                and c["attempts"] >= config.max_retries
                for c in poison_cells_
            ),
            ", ".join(
                f"[{c['index']}] {c['status']} "
                f"{(c['error'] or {}).get('kind')} x{c['attempts']}"
                for c in poison_cells_
            ),
        )
        report.record(
            "slow cells settled failed: deadline_exceeded",
            all(
                c["status"] == "failed"
                and c["error"]["kind"] == "deadline_exceeded"
                for c in slow_cells
            ),
            ", ".join(
                f"[{c['index']}] {c['status']} {(c['error'] or {}).get('kind')}"
                for c in slow_cells
            ),
        )

        health = client.healthz()
        report.counters = dict(health["counters"])
        fresh_successes = sum(
            1 for c in cells if c["status"] == "done" and c["source"] == "run"
        )
        report.record(
            "each unique cell simulated at most once successfully",
            report.counters["cells_simulated"] == fresh_successes,
            f"cells_simulated={report.counters['cells_simulated']} "
            f"fresh done cells={fresh_successes}",
        )
        report.record(
            "recovery counters visible in /metrics",
            report.counters["workers_recycled"] >= report.kills_delivered
            and "repro_workers_recycled_total" in client.metrics(),
            f"workers_recycled={report.counters['workers_recycled']} "
            f">= kills={report.kills_delivered}",
        )

        # The surviving sweep resubmitted: 100% served from the cache.
        resubmit = client.wait(
            client.submit_specs(good)["job"], timeout=config.wait_timeout
        )
        sources = [c["source"] for c in resubmit["cell_details"]]
        report.record(
            "immediate resubmission is 100% cache hits",
            resubmit["status"] == "done" and all(s == "cache" for s in sources),
            f"sources={sorted(set(sources))}",
        )

        # The pool is reusable after crashes and deadline recycles: a
        # brand-new sweep (cold keys) completes normally.
        fresh = [
            RunSpec(spec.workload, spec.protocol, spec.config, seed=spec.seed + 5000)
            for spec in good[: max(1, len(good) // 2)]
        ]
        after = client.wait(
            client.submit_specs(fresh)["job"], timeout=config.wait_timeout
        )
        report.record(
            "worker slots reusable after the storm (fresh sweep completes)",
            after["status"] == "done",
            f"status={after['status']}",
        )

        listed = client.jobs()["jobs"]
        report.record(
            "no job stuck in running",
            all(j["status"] in ("done", "failed") for j in listed),
            ", ".join(f"{j['job']}={j['status']}" for j in listed),
        )
        report.record(
            "service healthy after the storm",
            client.healthz()["status"] == "ok",
            f"status={client.healthz()['status']}",
        )
    finally:
        harness.close()
        if owns_cache:
            shutil.rmtree(cache_root, ignore_errors=True)
    return report
