"""Job and cell bookkeeping for the sweep service.

A *job* is one submission (an ordered list of cells); a *cell* is one
:class:`~repro.harness.parallel.RunSpec` plus its live progress state.
All mutation happens on the server's event loop, so no locking is needed;
status readers only ever see a consistent snapshot because handlers run
to completion between awaits.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.harness.parallel import RunSpec
from repro.service.specs import describe_workload
from repro.service.supervisor import CellTask

#: Cell lifecycle: ``queued`` (submitted to the pool, not yet picked up,
#: or backing off between retry attempts) -> ``running`` (a worker
#: process is simulating it) -> ``done`` or ``failed``.  Cache and
#: dedupe hits are born ``done``/attached mid-state.
CELL_STATES = ("queued", "running", "done", "failed")


@dataclass
class JobCell:
    """One cell of a job: spec, cache identity, and progress."""

    index: int
    spec: RunSpec
    key: str
    #: how the result is being obtained: ``run`` (fresh simulation this
    #: service owns), ``dedupe`` (shares another job's in-flight
    #: simulation), or ``cache`` (served from the on-disk result cache).
    source: str = "run"
    status: str = "queued"
    summary: dict | None = None
    error: dict | None = None
    #: execution attempts the supervised cell took (0 for cache hits).
    attempts: int = 0
    #: the shared supervised task while in flight (None once settled or
    #: when the cell was a cache hit).
    task: CellTask | None = None

    @property
    def effective_status(self) -> str:
        """``queued`` refines to ``running`` once a worker picks it up;
        a cell backing off between retries reads as ``queued``."""
        if self.status == "queued" and self.task is not None:
            if self.task.phase == "running":
                return "running"
        return self.status

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "workload": describe_workload(self.spec.workload),
            "protocol": self.spec.protocol,
            "cores": self.spec.config.num_cores,
            "seed": self.spec.seed,
            "key": self.key,
            "source": self.source,
            "status": self.effective_status,
            "summary": self.summary,
            "error": self.error,
            "attempts": self.attempts if self.task is None else self.task.attempts,
        }


@dataclass
class Job:
    """One submission: an id, its cells, and derived progress counts."""

    id: str
    cells: list[JobCell] = field(default_factory=list)
    created_at: float = field(default_factory=time.time)

    def counts(self) -> dict[str, int]:
        counts = dict.fromkeys(CELL_STATES, 0)
        for cell in self.cells:
            counts[cell.effective_status] += 1
        return counts

    @property
    def status(self) -> str:
        counts = self.counts()
        if counts["queued"] or counts["running"]:
            return "running"
        return "failed" if counts["failed"] else "done"

    @property
    def settled(self) -> bool:
        return self.status in ("done", "failed")

    def summary_dict(self) -> dict:
        return {
            "job": self.id,
            "status": self.status,
            "created_at": self.created_at,
            "cells": len(self.cells),
            "counts": self.counts(),
        }

    def as_dict(self) -> dict:
        payload = self.summary_dict()
        payload["cell_details"] = [cell.as_dict() for cell in self.cells]
        return payload


class JobRegistry:
    """In-memory registry of every job this server instance has accepted."""

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)

    def create(self) -> Job:
        job = Job(id=f"j{next(self._ids):04d}")
        self._jobs[job.id] = job
        return job

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def all(self) -> list[Job]:
        return list(self._jobs.values())

    def __len__(self) -> int:
        return len(self._jobs)
