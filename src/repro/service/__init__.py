"""Simulation-as-a-service: a long-running asyncio sweep job server.

The service wraps the existing :mod:`repro.harness.parallel` substrate —
:class:`~repro.harness.parallel.RunSpec` cells, the persistent
process-pool fan-out, and the content-addressed
:class:`~repro.harness.parallel.ResultCache` — behind a minimal
stdlib-only HTTP/1.1 API:

* ``POST /jobs`` — submit a sweep job (a list of cell specs)
* ``GET /jobs`` — list submitted jobs
* ``GET /jobs/<id>`` — per-job progress: completed/running/queued counts
  and per-cell outcomes
* ``GET /healthz`` — liveness (uptime, worker-pool health)
* ``GET /metrics`` — Prometheus-style text metrics (queue depth,
  throughput, cache hit rate, worker liveness)

Identical cells are deduped *globally* by the inputs+code-hash cache key:
two users submitting the same cell share one simulation, whether it is
still in flight or already on disk.  A failing cell fails only its own
job entry; sibling cells complete and are cached (the failure-isolation
contract of :func:`repro.harness.parallel.run_specs_outcomes`).

The service is **self-healing**: the worker pool runs under a
:class:`~repro.service.supervisor.PoolSupervisor` that rebuilds the pool
after worker crashes, retries transient cell failures with exponential
backoff (:class:`~repro.service.supervisor.RetryPolicy`), enforces
per-cell execution deadlines, and re-dispatches innocent-bystander cells
lost to a crash.  The server bounds admission (HTTP 503 + ``Retry-After``
past ``max_queued``) and drains gracefully on SIGTERM/SIGINT.  The
:mod:`~repro.service.chaos` harness (``denovosync-bench chaos-service``)
proves the contract against a live server under worker murder, poisoned
cells, and deadline overruns.
"""

from repro.service.chaos import ChaosConfig, ChaosReport, run_service_chaos
from repro.service.client import DEFAULT_HOST, DEFAULT_PORT, ServiceClient, ServiceError
from repro.service.executor import SweepExecutor
from repro.service.jobs import Job, JobCell, JobRegistry
from repro.service.metrics import ServiceMetrics
from repro.service.server import SweepService, run_server
from repro.service.specs import config_from_dict, spec_from_dict, spec_to_dict
from repro.service.supervisor import (
    CellResolution,
    CellTask,
    PoolSupervisor,
    RetryPolicy,
)

__all__ = [
    "CellResolution",
    "CellTask",
    "ChaosConfig",
    "ChaosReport",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Job",
    "JobCell",
    "JobRegistry",
    "PoolSupervisor",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "SweepExecutor",
    "SweepService",
    "config_from_dict",
    "run_server",
    "run_service_chaos",
    "spec_from_dict",
    "spec_to_dict",
]
