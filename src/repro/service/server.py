"""The asyncio sweep job server: stdlib-only HTTP/1.1 over a worker pool.

One event loop owns all bookkeeping (job registry, in-flight index,
metrics); worker processes only ever see picklable
:class:`~repro.harness.parallel.RunSpec` cells.  Each submitted cell gets
a *watcher* task that awaits the (possibly shared) pool future and
settles the cell — the owning watcher also retires the in-flight entry
and persists the result to the cache, so a cell's lifecycle is:

    POST /jobs -> lookup (cache | dedupe | run) -> watcher await
        -> settle cell (done/failed) -> [owner] cache.store + retire key

The HTTP layer is deliberately minimal: request line + headers +
``Content-Length`` body, ``Connection: close`` responses, JSON bodies
everywhere except the Prometheus ``/metrics`` text.  It exists so the
service has zero dependencies, not to be a general web server.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.harness.parallel import (
    CellError,
    ResultCache,
    RunSpec,
    cache_key_for,
)
from repro.service.executor import SweepExecutor
from repro.service.jobs import Job, JobCell, JobRegistry
from repro.service.metrics import ServiceMetrics
from repro.service.specs import spec_from_dict

#: Largest accepted request body; a 4096-cell job with full configs is
#: well under this.
MAX_BODY_BYTES = 32 * 1024 * 1024
#: Largest accepted request line / header line.
MAX_LINE_BYTES = 64 * 1024


class BadRequest(Exception):
    """A malformed request; rendered as an HTTP 400 with the message."""


class SweepService:
    """The server: routing, job submission, and cell watchers."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        max_workers_cap: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.executor = SweepExecutor(
            workers=workers, cache=cache, max_workers_cap=max_workers_cap
        )
        self.registry = JobRegistry()
        self.metrics = ServiceMetrics()
        self._server: Optional[asyncio.base_events.Server] = None
        self._watchers: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port) — with
        ``port=0`` the kernel picks an ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._watchers):
            task.cancel()
        if self._watchers:
            await asyncio.gather(*self._watchers, return_exceptions=True)
        self.executor.shutdown()

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, path, body = request
                self.metrics.bump("requests")
                status, content_type, payload = self._route(method, path, body)
            except BadRequest as exc:
                self.metrics.bump("requests")
                self.metrics.bump("bad_requests")
                status, content_type, payload = (
                    400,
                    "application/json",
                    json.dumps({"error": str(exc)}).encode(),
                )
            except asyncio.IncompleteReadError:
                return
            await self._respond(writer, status, content_type, payload)
        except (ConnectionError, asyncio.LimitOverrunError):
            pass  # client went away or sent garbage; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            raise BadRequest("malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise BadRequest("malformed Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(f"body too large (limit {MAX_BODY_BYTES} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], body

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, content_type: str, body: bytes
    ) -> None:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    def _route(self, method: str, path: str, body: bytes) -> tuple[int, str, bytes]:
        def as_json(status: int, payload: dict) -> tuple[int, str, bytes]:
            return status, "application/json", (json.dumps(payload) + "\n").encode()

        if path == "/healthz" and method == "GET":
            return as_json(200, self._healthz())
        if path == "/metrics" and method == "GET":
            text = self.metrics.render(
                queue_depth=self.executor.queue_depth(),
                running=self.executor.running_count(),
                workers=self.executor.worker_health(),
            )
            return 200, "text/plain; version=0.0.4", text.encode()
        if path == "/jobs":
            if method == "POST":
                job = self._submit_job(body)
                return as_json(202, {"job": job.id, "cells": len(job.cells),
                                     "status_url": f"/jobs/{job.id}"})
            if method == "GET":
                return as_json(
                    200, {"jobs": [job.summary_dict() for job in self.registry.all()]}
                )
            return 405, "application/json", b'{"error": "method not allowed"}\n'
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, "application/json", b'{"error": "method not allowed"}\n'
            job = self.registry.get(path[len("/jobs/"):])
            if job is None:
                return 404, "application/json", b'{"error": "no such job"}\n'
            return as_json(200, job.as_dict())
        return 404, "application/json", b'{"error": "no such endpoint"}\n'

    def _healthz(self) -> dict:
        workers = self.executor.worker_health()
        status = "ok" if self.executor.healthy else "degraded"
        payload = {
            "status": status,
            "jobs": len(self.registry),
            "workers": workers,
        }
        payload.update(
            self.metrics.snapshot(
                queue_depth=self.executor.queue_depth(),
                running=self.executor.running_count(),
                workers=workers,
            )
        )
        return payload

    # -- job submission ------------------------------------------------------

    def _submit_job(self, body: bytes) -> Job:
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict) or not isinstance(payload.get("cells"), list):
            raise BadRequest('body must be {"cells": [...]}')
        if not payload["cells"]:
            raise BadRequest("job has no cells")
        try:
            specs = [spec_from_dict(cell) for cell in payload["cells"]]
        except ValueError as exc:
            raise BadRequest(str(exc)) from None

        job = self.registry.create()
        self.metrics.bump("jobs_submitted")
        self.metrics.bump("cells_submitted", len(specs))
        for index, spec in enumerate(specs):
            job.cells.append(self._submit_cell(job, index, spec))
        return job

    def _submit_cell(self, job: Job, index: int, spec: RunSpec) -> JobCell:
        key = cache_key_for(spec)
        source, resolved = self.executor.lookup(spec, key)
        cell = JobCell(index=index, spec=spec, key=key, source=source)
        if source == "cache":
            cell.status = "done"
            cell.summary = resolved.summary()
            self.metrics.bump("cache_hits")
        else:
            cell.future = resolved
            if source == "dedupe":
                self.metrics.bump("dedupe_hits")
            watcher = asyncio.create_task(self._watch_cell(cell, owner=source == "run"))
            self._watchers.add(watcher)
            watcher.add_done_callback(self._watchers.discard)
        return cell

    async def _watch_cell(self, cell: JobCell, *, owner: bool) -> None:
        """Await one cell's pool future and settle it; failure isolation
        happens here — an exception settles only this cell."""
        try:
            result = await asyncio.wrap_future(cell.future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if owner:
                self.executor.complete(cell.key, cell.spec, None)
            cell.status = "failed"
            cell.error = CellError.from_exception(exc).as_dict()
            cell.future = None
            self.metrics.bump("cells_failed")
        else:
            if owner:
                # Store before marking done: a submission processed after
                # this point sees the cache entry, never a retired key.
                self.executor.complete(cell.key, cell.spec, result)
            cell.status = "done"
            cell.summary = result.summary()
            cell.future = None
            if owner:
                self.metrics.bump("cells_simulated")


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    ready_message: bool = True,
) -> None:
    """Blocking entry point used by ``denovosync-bench serve``."""

    async def main() -> None:
        service = SweepService(host=host, port=port, workers=workers, cache=cache)
        bound_host, bound_port = await service.start()
        if ready_message:
            print(
                f"sweep service on http://{bound_host}:{bound_port} "
                f"({service.executor.workers} workers, cache "
                f"{'off' if cache is None else cache.root})",
                flush=True,
            )
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
