"""The asyncio sweep job server: stdlib-only HTTP/1.1 over a worker pool.

One event loop owns all bookkeeping (job registry, in-flight index,
metrics); worker processes only ever see picklable
:class:`~repro.harness.parallel.RunSpec` cells.  Each submitted cell gets
a *watcher* task that awaits the (possibly shared) supervised outcome
and settles the cell — the supervisor persists successful results to the
cache and retires the in-flight entry *before* the outcome resolves, so
a cell's lifecycle is:

    POST /jobs -> admission check -> lookup (cache | dedupe | run)
        -> supervised attempts (retry/backoff, crash recovery, deadline)
        -> [supervisor] cache.store + retire key -> watcher settles cell

Failure handling is the supervisor's job (:mod:`repro.service.
supervisor`); the server adds **bounded admission** (jobs beyond
``max_queued`` in-flight cells are rejected with HTTP 503 and a
``Retry-After`` header — load shedding is visible as
``repro_rejected_total``) and **graceful drain** (SIGTERM/SIGINT stops
accepting jobs, lets in-flight cells settle up to a drain budget while
``/healthz`` reports ``draining``, persists their results, then exits).

The HTTP layer is deliberately minimal: request line + headers +
``Content-Length`` body, ``Connection: close`` responses, JSON bodies
everywhere except the Prometheus ``/metrics`` text.  It exists so the
service has zero dependencies, not to be a general web server.
"""

from __future__ import annotations

import asyncio
import json
import signal

from repro.harness.parallel import (
    ResultCache,
    RunSpec,
    cache_key_for,
)
from repro.service.executor import SweepExecutor
from repro.service.jobs import Job, JobCell, JobRegistry
from repro.service.metrics import ServiceMetrics
from repro.service.specs import spec_from_dict
from repro.service.supervisor import _USE_DEFAULT, RetryPolicy

#: Largest accepted request body; a 4096-cell job with full configs is
#: well under this.
MAX_BODY_BYTES = 32 * 1024 * 1024
#: Largest accepted request line / header line.
MAX_LINE_BYTES = 64 * 1024
#: Default bound on in-flight cells; submissions past it get HTTP 503.
DEFAULT_MAX_QUEUED = 4096
#: Default drain budget (seconds) before a signalled server gives up on
#: in-flight cells and exits.
DEFAULT_DRAIN_TIMEOUT = 30.0


class BadRequest(Exception):
    """A malformed request; rendered as an HTTP 400 with the message."""


class ServiceUnavailable(Exception):
    """Load shed or drain; rendered as HTTP 503 with ``Retry-After``."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class SweepService:
    """The server: routing, admission, job submission, and cell watchers."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        cache: ResultCache | None = None,
        max_workers_cap: int | None = None,
        max_queued: int | None = DEFAULT_MAX_QUEUED,
        cell_deadline: float | None = None,
        policy: RetryPolicy | None = None,
        tick: float = 0.05,
        worker_fn=None,
    ) -> None:
        self.host = host
        self.port = port
        self.max_queued = max_queued
        self.metrics = ServiceMetrics()
        self.executor = SweepExecutor(
            workers=workers,
            cache=cache,
            max_workers_cap=max_workers_cap,
            policy=policy,
            default_deadline=cell_deadline,
            tick=tick,
            worker_fn=worker_fn,
            on_counter=self.metrics.bump,
        )
        self.registry = JobRegistry()
        self._server: asyncio.base_events.Server | None = None
        self._watchers: set[asyncio.Task] = set()
        self._draining = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, start serving, and start the pool supervisor; returns the
        bound (host, port) — with ``port=0`` the kernel picks a port."""
        self.executor.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    def begin_drain(self) -> None:
        """Stop accepting jobs; status/health/metrics stay served."""
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def settled(self) -> bool:
        """True when no cell is in flight and every watcher has run."""
        return self.executor.queue_depth() == 0 and not self._watchers

    async def drain(self, budget: float = DEFAULT_DRAIN_TIMEOUT) -> bool:
        """Graceful shutdown: stop admissions, let in-flight cells settle
        (their results are persisted to the cache by the supervisor as
        usual) for up to ``budget`` seconds, then stop.  Returns True if
        everything settled inside the budget."""
        self.begin_drain()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + budget
        while not self.settled() and loop.time() < deadline:
            await asyncio.sleep(min(0.05, self.executor.supervisor.tick))
        finished = self.settled()
        await self.stop()
        return finished

    async def stop(self) -> None:
        """Shut down without dropping completed work: results already
        finished in workers are harvested into the cache *before* the
        pool goes down, and their watchers get one chance to settle the
        owning job cells."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Settle cells whose workers already produced a result (persisting
        # them via the supervisor's settle hook), then everything else as
        # structured ``shutdown`` errors — never as silently-dropped work.
        self.executor.shutdown()
        if self._watchers:
            # Watchers wake on the outcome futures shutdown just resolved.
            await asyncio.wait(list(self._watchers), timeout=5.0)
        for task in list(self._watchers):
            task.cancel()
        if self._watchers:
            await asyncio.gather(*self._watchers, return_exceptions=True)

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            headers: dict[str, str] = {}
            try:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, path, body = request
                self.metrics.bump("requests")
                status, content_type, payload = self._route(method, path, body)
            except BadRequest as exc:
                self.metrics.bump("requests")
                self.metrics.bump("bad_requests")
                status, content_type, payload = (
                    400,
                    "application/json",
                    json.dumps({"error": str(exc)}).encode(),
                )
            except ServiceUnavailable as exc:
                self.metrics.bump("rejected")
                headers["Retry-After"] = f"{max(1, round(exc.retry_after))}"
                status, content_type, payload = (
                    503,
                    "application/json",
                    json.dumps(
                        {"error": str(exc), "retry_after": exc.retry_after}
                    ).encode(),
                )
            except asyncio.IncompleteReadError:
                return
            await self._respond(writer, status, content_type, payload, headers)
        except (ConnectionError, asyncio.LimitOverrunError):
            pass  # client went away or sent garbage; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes] | None:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            raise BadRequest("malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise BadRequest("malformed Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(f"body too large (limit {MAX_BODY_BYTES} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  503: "Service Unavailable"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        for name, value in (extra_headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    def _route(self, method: str, path: str, body: bytes) -> tuple[int, str, bytes]:
        def as_json(status: int, payload: dict) -> tuple[int, str, bytes]:
            return status, "application/json", (json.dumps(payload) + "\n").encode()

        if path == "/healthz" and method == "GET":
            return as_json(200, self._healthz())
        if path == "/metrics" and method == "GET":
            text = self.metrics.render(
                queue_depth=self.executor.queue_depth(),
                running=self.executor.running_count(),
                workers=self.executor.worker_health(),
            )
            return 200, "text/plain; version=0.0.4", text.encode()
        if path == "/jobs":
            if method == "POST":
                job = self._submit_job(body)
                return as_json(202, {"job": job.id, "cells": len(job.cells),
                                     "status_url": f"/jobs/{job.id}"})
            if method == "GET":
                return as_json(
                    200, {"jobs": [job.summary_dict() for job in self.registry.all()]}
                )
            return 405, "application/json", b'{"error": "method not allowed"}\n'
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, "application/json", b'{"error": "method not allowed"}\n'
            job = self.registry.get(path[len("/jobs/"):])
            if job is None:
                return 404, "application/json", b'{"error": "no such job"}\n'
            return as_json(200, job.as_dict())
        return 404, "application/json", b'{"error": "no such endpoint"}\n'

    def _healthz(self) -> dict:
        workers = self.executor.worker_health()
        if self._draining:
            status = "draining"
        else:
            status = "ok" if self.executor.healthy else "degraded"
        payload = {
            "status": status,
            "draining": self._draining,
            "jobs": len(self.registry),
            "workers": workers,
        }
        payload.update(
            self.metrics.snapshot(
                queue_depth=self.executor.queue_depth(),
                running=self.executor.running_count(),
                workers=workers,
            )
        )
        return payload

    # -- job submission ------------------------------------------------------

    def _submit_job(self, body: bytes) -> Job:
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict) or not isinstance(payload.get("cells"), list):
            raise BadRequest('body must be {"cells": [...]}')
        if not payload["cells"]:
            raise BadRequest("job has no cells")
        try:
            specs = [spec_from_dict(cell) for cell in payload["cells"]]
        except ValueError as exc:
            raise BadRequest(str(exc)) from None
        deadline = _USE_DEFAULT
        if "cell_deadline" in payload:
            deadline = payload["cell_deadline"]
            if deadline is not None:
                try:
                    deadline = float(deadline)
                except (TypeError, ValueError):
                    raise BadRequest(
                        "cell_deadline must be a number of seconds or null"
                    ) from None
                if deadline <= 0:
                    raise BadRequest("cell_deadline must be positive")

        if self._draining:
            raise ServiceUnavailable(
                "server is draining and no longer accepts jobs", retry_after=30.0
            )
        # Bounded admission: shed load instead of queueing without limit.
        # The check is conservative — cells that would resolve via cache
        # or dedupe count against the bound until they are looked up.
        if self.max_queued is not None:
            depth = self.executor.queue_depth()
            if depth + len(specs) > self.max_queued:
                raise ServiceUnavailable(
                    f"queue full: {depth} cells in flight + {len(specs)} "
                    f"submitted exceeds --max-queued {self.max_queued}",
                    retry_after=1.0,
                )

        job = self.registry.create()
        self.metrics.bump("jobs_submitted")
        self.metrics.bump("cells_submitted", len(specs))
        for index, spec in enumerate(specs):
            job.cells.append(self._submit_cell(job, index, spec, deadline))
        return job

    def _submit_cell(
        self, job: Job, index: int, spec: RunSpec, deadline=_USE_DEFAULT
    ) -> JobCell:
        key = cache_key_for(spec)
        source, resolved = self.executor.lookup(spec, key, deadline=deadline)
        cell = JobCell(index=index, spec=spec, key=key, source=source)
        if source == "cache":
            cell.status = "done"
            cell.summary = resolved.summary()
            self.metrics.bump("cache_hits")
        else:
            cell.task = resolved
            if source == "dedupe":
                self.metrics.bump("dedupe_hits")
            watcher = asyncio.create_task(self._watch_cell(cell))
            self._watchers.add(watcher)
            watcher.add_done_callback(self._watchers.discard)
        return cell

    async def _watch_cell(self, cell: JobCell) -> None:
        """Await one cell's *terminal* supervised outcome and settle it.
        Retries, crash re-submissions, and deadlines all happen upstream
        in the supervisor; by the time the outcome future resolves the
        result is already in the cache (on success) and the in-flight key
        retired — a follower never observes a pre-retry failure."""
        try:
            resolution = await asyncio.shield(cell.task.outcome)
        except asyncio.CancelledError:
            raise
        cell.attempts = resolution.attempts
        cell.task = None
        if resolution.ok:
            cell.status = "done"
            cell.summary = resolution.result.summary()
        else:
            cell.status = "failed"
            cell.error = resolution.error
            self.metrics.bump("cells_failed")


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    workers: int | None = None,
    cache: ResultCache | None = None,
    max_queued: int | None = DEFAULT_MAX_QUEUED,
    cell_deadline: float | None = None,
    max_retries: int = RetryPolicy.max_attempts,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    ready_message: bool = True,
) -> None:
    """Blocking entry point used by ``denovosync-bench serve``.

    SIGTERM/SIGINT triggers a graceful drain: admissions stop (HTTP 503),
    in-flight cells get up to ``drain_timeout`` seconds to settle (their
    results are persisted to the cache), then the server exits.  A second
    signal skips the rest of the drain budget."""

    async def main() -> None:
        service = SweepService(
            host=host, port=port, workers=workers, cache=cache,
            max_queued=max_queued, cell_deadline=cell_deadline,
            policy=RetryPolicy(max_attempts=max(1, max_retries)),
        )
        bound_host, bound_port = await service.start()
        if ready_message:
            print(
                f"sweep service on http://{bound_host}:{bound_port} "
                f"({service.executor.workers} workers, cache "
                f"{'off' if cache is None else cache.root})",
                flush=True,
            )

        loop = asyncio.get_running_loop()
        drain_requested = asyncio.Event()
        force_stop = asyncio.Event()

        def on_signal() -> None:
            if drain_requested.is_set():
                force_stop.set()
            else:
                drain_requested.set()

        signals_installed = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, on_signal)
                signals_installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX loop; KeyboardInterrupt path still works

        serve_task = asyncio.create_task(service.serve_forever())
        drain_task = asyncio.create_task(drain_requested.wait())
        try:
            await asyncio.wait(
                {serve_task, drain_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if drain_requested.is_set():
                service.begin_drain()
                if ready_message:
                    print(
                        f"draining: {service.executor.queue_depth()} cells in "
                        f"flight, budget {drain_timeout:g}s (signal again to "
                        f"skip)",
                        flush=True,
                    )
                waiter = asyncio.create_task(force_stop.wait())
                deadline = loop.time() + drain_timeout
                while not service.settled() and not force_stop.is_set():
                    if loop.time() >= deadline:
                        break
                    await asyncio.wait({waiter}, timeout=0.05)
                waiter.cancel()
        except asyncio.CancelledError:
            pass
        finally:
            drain_task.cancel()
            serve_task.cancel()
            await asyncio.gather(serve_task, drain_task, return_exceptions=True)
            for sig in signals_installed:
                loop.remove_signal_handler(sig)
            await service.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback
        pass
