"""Persistent worker pool with global in-flight dedupe for the service.

Unlike :func:`repro.harness.parallel.run_specs`, which spins a pool up
and down per sweep, the service keeps one
:class:`~concurrent.futures.ProcessPoolExecutor` alive for its whole
lifetime (warm workers, no per-job fork cost) and maintains an *in-flight
index* from cache key to pool future.  Submissions check, in order:

1. the on-disk :class:`~repro.harness.parallel.ResultCache` (a completed
   identical cell, from any past job or process) — ``cache``;
2. the in-flight index (an identical cell currently simulating for some
   other job) — ``dedupe``: the new job attaches to the same future;
3. otherwise the cell is submitted to the pool — ``run``.

Together with the content-addressed key (inputs + code hash) this gives
the service's core guarantee: **each unique cell simulates exactly once**,
no matter how many overlapping jobs are submitted concurrently.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import Optional

from repro.harness.parallel import (
    ResultCache,
    RunSpec,
    execute_spec,
    resolve_jobs,
)
from repro.stats.collector import RunResult


class SweepExecutor:
    """Owns the worker pool, the result cache, and the in-flight index."""

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        max_workers_cap: Optional[int] = None,
    ) -> None:
        self.workers = resolve_jobs(workers, cap=max_workers_cap)
        self.cache = cache
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.workers
        )
        self._inflight: dict[str, Future] = {}

    # -- submission ----------------------------------------------------------

    def lookup(self, spec: RunSpec, key: str):
        """Resolve one cell; returns ``(source, payload)`` where source is
        ``"cache"`` (payload: the cached :class:`RunResult`), ``"dedupe"``
        (payload: the sibling's in-flight future) or ``"run"`` (payload: a
        freshly submitted future)."""
        if self._pool is None:
            raise RuntimeError("executor is shut down")
        if self.cache is not None:
            cached = self.cache.load(spec)
            if cached is not None:
                return "cache", cached
        future = self._inflight.get(key)
        if future is not None:
            return "dedupe", future
        future = self._pool.submit(execute_spec, spec)
        self._inflight[key] = future
        return "run", future

    def complete(self, key: str, spec: RunSpec, result: Optional[RunResult]) -> None:
        """Owner-side completion: retire the in-flight entry and persist a
        successful result so later submissions become cache hits.  Must run
        before any later submission is processed on the same event loop
        (the server's cell watcher guarantees this ordering)."""
        self._inflight.pop(key, None)
        if result is not None and self.cache is not None:
            self.cache.store(spec, result)

    # -- introspection -------------------------------------------------------

    def queue_depth(self) -> int:
        """Unique cells submitted to the pool and not yet completed."""
        return len(self._inflight)

    def running_count(self) -> int:
        return sum(1 for future in self._inflight.values() if future.running())

    def worker_health(self) -> dict:
        """Best-effort worker liveness: configured size, live processes,
        and whether the pool has broken (a worker died hard)."""
        alive = 0
        broken = False
        pool = self._pool
        if pool is None:
            return {"configured": self.workers, "alive": 0, "broken": False, "shutdown": True}
        broken = bool(getattr(pool, "_broken", False))
        processes = getattr(pool, "_processes", None) or {}
        try:
            alive = sum(1 for proc in processes.values() if proc.is_alive())
        except Exception:  # pragma: no cover - interpreter-internal drift
            alive = len(processes)
        return {
            "configured": self.workers,
            "alive": alive,
            "broken": broken,
            "shutdown": False,
        }

    @property
    def healthy(self) -> bool:
        health = self.worker_health()
        return not health["broken"] and not health["shutdown"]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._inflight.clear()
