"""Self-healing worker pool with global in-flight dedupe for the service.

Unlike :func:`repro.harness.parallel.run_specs`, which spins a pool up
and down per sweep, the service keeps one supervised worker pool alive
for its whole lifetime (warm workers, no per-job fork cost) and
maintains an *in-flight index* from cache key to the cell's supervised
task.  Submissions check, in order:

1. the on-disk :class:`~repro.harness.parallel.ResultCache` (a completed
   identical cell, from any past job or process) — ``cache``;
2. the in-flight index (an identical cell currently supervised for some
   other job) — ``dedupe``: the new job attaches to the same
   :class:`~repro.service.supervisor.CellTask`, whose outcome future
   resolves only on the *terminal* outcome, after all retries;
3. otherwise the cell is submitted to the supervised pool — ``run``.

Together with the content-addressed key (inputs + code hash) this gives
the service's core guarantee: **each unique cell simulates at most once
successfully**, no matter how many overlapping jobs are submitted
concurrently and no matter how many times workers die under it — a
retry re-simulates only cells that provably produced no result.

The pool itself is owned by a :class:`~repro.service.supervisor.
PoolSupervisor`: worker crashes rebuild the pool and re-submit lost
cells, raising cells retry with exponential backoff, hung cells time out
against a wall-clock deadline, and shutdown harvests already-completed
results into the cache instead of dropping them.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.harness.parallel import ResultCache, RunSpec, resolve_jobs
from repro.service.supervisor import (
    _USE_DEFAULT,
    CellResolution,
    PoolSupervisor,
    RetryPolicy,
)


class SweepExecutor:
    """Owns the supervised worker pool, the result cache, and the
    in-flight index.  All methods must run on the server's event loop."""

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache: ResultCache | None = None,
        max_workers_cap: int | None = None,
        policy: RetryPolicy | None = None,
        default_deadline: float | None = None,
        tick: float = 0.05,
        worker_fn=None,
        on_counter: Callable[..., None] | None = None,
    ) -> None:
        self.workers = resolve_jobs(workers, cap=max_workers_cap)
        self.cache = cache
        self._on_counter = on_counter
        supervisor_kwargs = dict(
            workers=self.workers,
            policy=policy,
            tick=tick,
            default_deadline=default_deadline,
            on_settle=self._on_settle,
            on_counter=on_counter,
        )
        if worker_fn is not None:
            supervisor_kwargs["worker_fn"] = worker_fn
        self.supervisor = PoolSupervisor(**supervisor_kwargs)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the supervision loop (requires a running event loop)."""
        self.supervisor.start()

    def shutdown(self) -> None:
        """Harvest completed work (persisting it to the cache), settle the
        rest with ``shutdown`` errors, and kill the pool."""
        self.supervisor.shutdown()

    def harvest(self) -> int:
        """Settle (and cache) cells whose workers already finished."""
        return self.supervisor.harvest()

    # -- submission ----------------------------------------------------------

    def lookup(self, spec: RunSpec, key: str, *, deadline=_USE_DEFAULT):
        """Resolve one cell; returns ``(source, payload)`` where source is
        ``"cache"`` (payload: the cached :class:`RunResult`), ``"dedupe"``
        (payload: the sibling's in-flight :class:`CellTask`) or ``"run"``
        (payload: a freshly supervised :class:`CellTask`).

        ``deadline`` is the cell's wall-clock execution budget in seconds
        (None: unlimited; default: the executor-wide default).  A dedupe
        hit keeps the original submission's deadline."""
        if self.supervisor._closed:
            raise RuntimeError("executor is shut down")
        if self.cache is not None:
            cached = self.cache.load(spec)
            if cached is not None:
                return "cache", cached
        task = self.supervisor.get(key)
        if task is not None:
            return "dedupe", task
        return "run", self.supervisor.submit(spec, key, deadline=deadline)

    def _on_settle(self, resolution: CellResolution) -> None:
        """Supervisor settle hook, invoked *before* the outcome future
        resolves and before the in-flight key retires: persist a success
        so any later submission sees the cache entry, never a gap."""
        if resolution.ok:
            if self.cache is not None:
                self.cache.store(resolution.spec, resolution.result)
            if self._on_counter is not None:
                self._on_counter("cells_simulated", 1)
                epoch = resolution.result.meta.get("epoch")
                if epoch:
                    self._on_counter("epoch_epochs", epoch["epochs"])
                    self._on_counter(
                        "epoch_events_batched", epoch["events_batched"]
                    )
                    self._on_counter(
                        "epoch_spin_polls_elided", epoch["spin_polls_elided"]
                    )
                    self._on_counter(
                        "epoch_fallbacks", sum(epoch["fallbacks"].values())
                    )

    # -- introspection -------------------------------------------------------

    def queue_depth(self) -> int:
        """Unique cells supervised and not yet settled."""
        return self.supervisor.pending_count()

    def running_count(self) -> int:
        return self.supervisor.running_count()

    def worker_pids(self) -> list[int]:
        return self.supervisor.worker_pids()

    def worker_health(self) -> dict:
        return self.supervisor.worker_health()

    @property
    def healthy(self) -> bool:
        health = self.worker_health()
        return not health["broken"] and not health["shutdown"]
