"""Service metrics: counters plus derived gauges, rendered two ways.

``snapshot()`` returns the JSON form (used by ``/healthz`` and tests);
``render()`` produces Prometheus text-exposition format for ``/metrics``
— the structured pass/fail ops shape of the sync-state healthcheck
exemplar, consumable by curl or a scraper alike.
"""

from __future__ import annotations

import time
from collections.abc import Callable

#: counter name -> help string; the fixed vocabulary keeps /metrics stable.
COUNTERS = {
    "jobs_submitted": "Sweep jobs accepted over HTTP",
    "cells_submitted": "Cells across all accepted jobs",
    "cells_simulated": "Cells simulated to completion by this server's pool",
    "cells_failed": "Cells whose simulation raised",
    "cache_hits": "Cells served from the on-disk result cache",
    "dedupe_hits": "Cells attached to an identical in-flight simulation",
    "requests": "HTTP requests handled",
    "bad_requests": "HTTP requests rejected (4xx)",
    "rejected": "Job submissions rejected by admission control (HTTP 503)",
    "cells_retried": "Cell attempts retried after a transient failure",
    "workers_recycled": "Worker-pool rebuilds (crash recovery or deadline enforcement)",
    "cells_crashed": "Cells settled as worker_crash after repeated mid-execution worker deaths",
    "cells_deadline_exceeded": "Cells settled as failed after exceeding their execution deadline",
    "epoch_epochs": "Epoch-execution epochs entered across simulated cells",
    "epoch_events_batched": "Events fired inside batched epoch drains",
    "epoch_spin_polls_elided": "Spin polls replaced by fast-forward lease ticks",
    "epoch_fallbacks": "Per-event fallbacks taken by the epoch loop (all causes)",
}


class ServiceMetrics:
    """Monotonic counters + uptime; gauges are supplied at render time."""

    def __init__(self, *, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self.started_at = clock()
        self.counts = dict.fromkeys(COUNTERS, 0)

    def bump(self, name: str, by: int = 1) -> None:
        self.counts[name] += by

    @property
    def uptime(self) -> float:
        return self._clock() - self.started_at

    # -- derived gauges ------------------------------------------------------

    def cells_completed(self) -> int:
        """Cells resolved without a fresh simulation or with one: everything
        a client no longer waits on."""
        return (
            self.counts["cells_simulated"]
            + self.counts["cache_hits"]
            + self.counts["dedupe_hits"]
        )

    def cache_hit_rate(self) -> float:
        """Fraction of submitted cells that needed no new simulation
        (on-disk hit or in-flight dedupe)."""
        submitted = self.counts["cells_submitted"]
        if not submitted:
            return 0.0
        return (self.counts["cache_hits"] + self.counts["dedupe_hits"]) / submitted

    def cells_per_second(self) -> float:
        uptime = self.uptime
        return self.cells_completed() / uptime if uptime > 0 else 0.0

    def snapshot(
        self, *, queue_depth: int = 0, running: int = 0,
        workers: dict | None = None,
    ) -> dict:
        return {
            "uptime_seconds": round(self.uptime, 3),
            "counters": dict(self.counts),
            "queue_depth": queue_depth,
            "cells_running": running,
            "cells_completed": self.cells_completed(),
            "cache_hit_rate": round(self.cache_hit_rate(), 4),
            "cells_per_second": round(self.cells_per_second(), 4),
            "workers": workers or {},
        }

    def render(self, *, queue_depth: int = 0, running: int = 0, workers: dict | None = None) -> str:
        """Prometheus text-exposition format (one scrape = one call)."""
        lines = []

        def emit(name: str, kind: str, help_text: str, value) -> None:
            lines.append(f"# HELP repro_{name} {help_text}")
            lines.append(f"# TYPE repro_{name} {kind}")
            value = float(value)
            rendered = f"{value:.6f}".rstrip("0").rstrip(".") if value % 1 else str(int(value))
            lines.append(f"repro_{name} {rendered}")

        emit("uptime_seconds", "gauge", "Seconds since the server started", self.uptime)
        for name, help_text in COUNTERS.items():
            emit(f"{name}_total", "counter", help_text, self.counts[name])
        emit("queue_depth", "gauge", "Unique cells submitted and not yet completed", queue_depth)
        emit("cells_running", "gauge", "Cells currently executing in a worker", running)
        emit(
            "cells_completed_total",
            "counter",
            "Cells resolved (simulated, cache hit, or dedupe hit)",
            self.cells_completed(),
        )
        emit(
            "cache_hit_rate",
            "gauge",
            "Fraction of submitted cells that needed no new simulation",
            self.cache_hit_rate(),
        )
        emit(
            "cells_per_second",
            "gauge",
            "Completed cells per second of uptime",
            self.cells_per_second(),
        )
        workers = workers or {}
        emit("workers_configured", "gauge", "Worker processes configured",
         workers.get("configured", 0))
        emit("workers_alive", "gauge", "Worker processes currently alive",
         workers.get("alive", 0))
        emit("pool_broken", "gauge", "1 if the worker pool is broken",
         int(bool(workers.get("broken"))))
        return "\n".join(lines) + "\n"
