"""Private L1 cache structures.

Two flavours, matching the two protocol families:

* :class:`MesiL1` keeps coherence state per cache line (M/E/S; absence
  means Invalid).  MESI hits are never stale (writers invalidate sharers
  before committing), so values are always served from the backing store
  and the L1 only tracks state and LRU order.
* :class:`DeNovoL1` keeps per-word state (Invalid/Valid/Registered) and
  per-word *values*, because DeNovo Valid copies may legitimately be stale
  until a self-invalidation.  Frames are still allocated per line and LRU
  is maintained at line granularity, as in the paper's hardware.

Both caches are set-associative with LRU replacement within each set.

Epoch-execution contract: every L1 mutation happens inside a protocol
access method (a declared wake hook — see
:meth:`repro.protocols.base.CoherenceProtocol.spin_poll_lease` and the
``undeclared-wake-mutation`` sanitize rule).  A fast-forwarded spin poll
never touches the L1: leases are only granted for polls that bypass it
(Neat sync reads drop any cached copy and never refill it), so LRU order
and line state are byte-identical whether the poll was simulated in full
or closed-formed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from collections.abc import Callable

from repro.config import SystemConfig
from repro.mem.address import AddressMap


class MesiState(Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"


class DeNovoState(Enum):
    INVALID = "I"
    VALID = "V"
    REGISTERED = "R"


class _SetAssocDirectory:
    """Shared LRU machinery: maps line -> entry within set-indexed ways."""

    def __init__(self, config: SystemConfig) -> None:
        self.num_sets = max(1, config.l1_sets)
        self.assoc = config.l1_assoc
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]

    def _set_of(self, line: int) -> OrderedDict:
        return self._sets[line % self.num_sets]

    def get(self, line: int, touch: bool = True):
        # Set indexing is inlined here (and in put/pop): this runs once or
        # more per simulated memory operation.
        group = self._sets[line % self.num_sets]
        entry = group.get(line)
        if entry is not None and touch:
            group.move_to_end(line)
        return entry

    def put(self, line: int, entry) -> tuple[int, object] | None:
        """Insert/replace ``line``; return an evicted (line, entry) or None."""
        group = self._sets[line % self.num_sets]
        victim = None
        if line not in group and len(group) >= self.assoc:
            victim = group.popitem(last=False)
        group[line] = entry
        group.move_to_end(line)
        return victim

    def replace(self, line: int, entry) -> None:
        """Overwrite the entry of a resident ``line`` without touching LRU.

        Used for transitions forced by *remote* activity (e.g. a MESI owner
        downgraded to Shared by another core's load): the local core did not
        access the line, so its recency must not change.
        """
        group = self._set_of(line)
        if line not in group:
            raise KeyError(f"line {line} not resident")
        group[line] = entry

    def pop(self, line: int):
        return self._sets[line % self.num_sets].pop(line, None)

    def __iter__(self):
        for group in self._sets:
            yield from group.items()

    def __len__(self) -> int:
        return sum(len(group) for group in self._sets)


class MesiL1:
    """Line-granularity MESI L1 for one core."""

    def __init__(self, core_id: int, config: SystemConfig) -> None:
        self.core_id = core_id
        self._dir = _SetAssocDirectory(config)
        # state_of runs once or more per memory operation: index the
        # directory's sets directly rather than through _dir.get.
        self._dsets = self._dir._sets
        self._dnsets = self._dir.num_sets

    def state_of(self, line: int, touch: bool = True) -> MesiState | None:
        group = self._dsets[line % self._dnsets]
        entry = group.get(line)
        if entry is not None and touch:
            group.move_to_end(line)
        return entry

    def insert(self, line: int, state: MesiState) -> tuple[int, MesiState] | None:
        """Fill ``line`` in ``state``; return the evicted (line, state) if any."""
        return self._dir.put(line, state)

    def set_state(self, line: int, state: MesiState) -> None:
        """Change the coherence state of a resident line *in place*.

        Deliberately does not refresh LRU recency: state changes driven by
        remote requests (owner downgrade on a forwarded load, for example)
        are not local accesses, so they must not keep the line artificially
        hot in this core's replacement order.  Local accesses touch the
        line through :meth:`state_of` before calling this.
        """
        if self._dir.get(line, touch=False) is None:
            raise KeyError(f"line {line} not present in L1 {self.core_id}")
        self._dir.replace(line, state)

    def invalidate(self, line: int) -> MesiState | None:
        """Drop ``line`` (writer-initiated invalidation); return old state."""
        return self._dir.pop(line)

    def resident_lines(self) -> list[int]:
        return [line for line, _ in self._dir]

    def lines_and_states(self) -> list[tuple[int, MesiState]]:
        """Every resident (line, state) pair (for invariant audits)."""
        return list(self._dir)

    def __len__(self) -> int:
        return len(self._dir)


@dataclass
class DeNovoFrame:
    """One line frame: per-word state and value (keyed by word-in-line)."""

    states: dict[int, DeNovoState] = field(default_factory=dict)
    values: dict[int, int] = field(default_factory=dict)

    def registered_offsets(self) -> list[int]:
        return [
            off for off, st in self.states.items() if st is DeNovoState.REGISTERED
        ]


class DeNovoL1:
    """Word-granularity DeNovo L1 for one core.

    ``on_evict_registered(addr, value)`` is called for every Registered word
    lost to replacement so the protocol can write the value back to the
    registry (a DeNovo writeback is a word-granularity registration return).
    """

    def __init__(
        self,
        core_id: int,
        config: SystemConfig,
        amap: AddressMap,
        on_evict_registered: Callable[[int, int], None] | None = None,
    ) -> None:
        self.core_id = core_id
        self.amap = amap
        # Inlined address math for the per-word hot paths: every standard
        # geometry is power-of-two, so state/value lookups use shift/mask
        # directly; ``line_shift is None`` falls back to the AddressMap
        # methods (see repro.mem.address).
        self._line_shift = amap.line_shift
        self._off_mask = amap.offset_mask
        self._dir = _SetAssocDirectory(config)
        # state_of/value_of run several times per memory operation, so
        # they index the directory's sets directly (one dict get instead
        # of a method-call layer).
        self._dsets = self._dir._sets
        self._dnsets = self._dir.num_sets
        self._on_evict_registered = on_evict_registered
        # region_id -> set of word addresses currently Valid, for O(1)
        # selective self-invalidation.
        self._valid_by_region: dict[int, set[int]] = {}
        self._region_of_addr: Callable[[int], int | None] = lambda addr: None
        # Optional live view of the allocator's addr -> Region dict; when
        # installed, valid-word tracking reads it directly (one dict get)
        # instead of making two calls per lookup.  The dict is mutated in
        # place by the allocator, so the reference never goes stale.
        self._region_map: dict | None = None

    def set_region_lookup(
        self,
        lookup: Callable[[int], int | None],
        region_map: dict | None = None,
    ) -> None:
        """Install the allocator's address -> region-id mapping."""
        self._region_of_addr = lookup
        self._region_map = region_map

    # -- state queries ----------------------------------------------------

    def state_of(self, addr: int, touch: bool = True) -> DeNovoState:
        shift = self._line_shift
        if shift is not None:
            line, off = addr >> shift, addr & self._off_mask
        else:
            line, off = self.amap.line_of(addr), self.amap.word_in_line(addr)
        group = self._dsets[line % self._dnsets]
        frame = group.get(line)
        if frame is None:
            return DeNovoState.INVALID
        if touch:
            group.move_to_end(line)
        return frame.states.get(off, DeNovoState.INVALID)

    def present_value(self, addr: int) -> int | None:
        """Value of ``addr`` if Valid or Registered here, else None.

        Combines the ``state_of`` + ``value_of`` pair of the data-access
        hit check into one directory lookup.  LRU semantics match
        ``state_of(touch=True)``: a resident line is touched even when
        the word itself is absent.  (Stored values are ints, so None is
        unambiguous.)
        """
        shift = self._line_shift
        if shift is not None:
            line, off = addr >> shift, addr & self._off_mask
        else:
            line, off = self.amap.line_of(addr), self.amap.word_in_line(addr)
        group = self._dsets[line % self._dnsets]
        frame = group.get(line)
        if frame is None:
            return None
        group.move_to_end(line)
        if off in frame.states:
            return frame.values[off]
        return None

    def registered_value(self, addr: int) -> int | None:
        """Value of ``addr`` if Registered here, else None (one lookup).

        The sync-access hit check: Valid does not count as a usable copy
        for synchronization reads.  Touch semantics as ``state_of``.
        """
        shift = self._line_shift
        if shift is not None:
            line, off = addr >> shift, addr & self._off_mask
        else:
            line, off = self.amap.line_of(addr), self.amap.word_in_line(addr)
        group = self._dsets[line % self._dnsets]
        frame = group.get(line)
        if frame is None:
            return None
        group.move_to_end(line)
        if frame.states.get(off) is DeNovoState.REGISTERED:
            return frame.values[off]
        return None

    def try_write_registered(self, addr: int, value: int) -> bool:
        """Write ``addr`` if Registered here; True on success.

        One directory lookup for the ``state_of`` + ``write_word`` pair
        of the store hit path (both of which touch the line, so a single
        touch is equivalent).
        """
        shift = self._line_shift
        if shift is not None:
            line, off = addr >> shift, addr & self._off_mask
        else:
            line, off = self.amap.line_of(addr), self.amap.word_in_line(addr)
        group = self._dsets[line % self._dnsets]
        frame = group.get(line)
        if frame is None:
            return False
        group.move_to_end(line)
        if frame.states.get(off) is not DeNovoState.REGISTERED:
            return False
        frame.values[off] = value
        return True

    def value_of(self, addr: int) -> int | None:
        shift = self._line_shift
        if shift is not None:
            line, off = addr >> shift, addr & self._off_mask
        else:
            line, off = self.amap.line_of(addr), self.amap.word_in_line(addr)
        frame = self._dsets[line % self._dnsets].get(line)
        if frame is None:
            return None
        return frame.values.get(off)

    # -- fills and upgrades -----------------------------------------------

    def _frame_for(self, line: int) -> DeNovoFrame:
        frame = self._dir.get(line)
        if frame is None:
            frame = DeNovoFrame()
            victim = self._dir.put(line, frame)
            if victim is not None:
                self._evict_frame(*victim)
        return frame

    def fill_word(self, addr: int, value: int, state: DeNovoState) -> None:
        """Install ``addr`` with ``value`` in ``state`` (Valid or Registered)."""
        if state is DeNovoState.INVALID:
            raise ValueError("cannot fill a word in Invalid state")
        shift = self._line_shift
        if shift is not None:
            line, off = addr >> shift, addr & self._off_mask
        else:
            line, off = self.amap.line_of(addr), self.amap.word_in_line(addr)
        group = self._dsets[line % self._dnsets]
        frame = group.get(line)
        if frame is not None:
            group.move_to_end(line)
        else:
            frame = DeNovoFrame()
            victim = self._dir.put(line, frame)
            if victim is not None:
                self._evict_frame(*victim)
        old = frame.states.get(off)
        frame.states[off] = state
        frame.values[off] = value
        # _track_valid/_untrack_valid inlined: the common sync-path fill
        # (Registered over Registered/absent) takes neither branch and
        # pays no region lookup at all.
        if old is DeNovoState.VALID:
            rmap = self._region_map
            if rmap is not None:
                region = rmap.get(addr)
                region_id = region.region_id if region is not None else None
            else:
                region_id = self._region_of_addr(addr)
            bucket = self._valid_by_region.get(region_id)
            if bucket is not None:
                bucket.discard(addr)
        if state is DeNovoState.VALID:
            rmap = self._region_map
            if rmap is not None:
                region = rmap.get(addr)
                region_id = region.region_id if region is not None else None
            else:
                region_id = self._region_of_addr(addr)
            self._valid_by_region.setdefault(region_id, set()).add(addr)

    def write_word(self, addr: int, value: int) -> None:
        """Update the value of a word already Registered here."""
        shift = self._line_shift
        if shift is not None:
            line, off = addr >> shift, addr & self._off_mask
        else:
            line, off = self.amap.line_of(addr), self.amap.word_in_line(addr)
        group = self._dsets[line % self._dnsets]
        frame = group.get(line)
        if frame is not None:
            group.move_to_end(line)
        if frame is None or frame.states.get(off) is not DeNovoState.REGISTERED:
            raise KeyError(f"word {addr} not Registered in L1 {self.core_id}")
        frame.values[off] = value

    def downgrade(self, addr: int, to: DeNovoState) -> None:
        """Registered -> Valid/Invalid (remote registration took ownership)."""
        shift = self._line_shift
        if shift is not None:
            line, off = addr >> shift, addr & self._off_mask
        else:
            line, off = self.amap.line_of(addr), self.amap.word_in_line(addr)
        frame = self._dsets[line % self._dnsets].get(line)
        if frame is None:
            return
        old = frame.states.get(off)
        if old is not DeNovoState.REGISTERED:
            return
        if to is DeNovoState.INVALID:
            frame.states.pop(off, None)
            frame.values.pop(off, None)
        else:
            frame.states[off] = to
            self._track_valid(addr)

    def invalidate_word(self, addr: int) -> None:
        """Drop one word regardless of state (no writeback)."""
        shift = self._line_shift
        if shift is not None:
            line, off = addr >> shift, addr & self._off_mask
        else:
            line, off = self.amap.line_of(addr), self.amap.word_in_line(addr)
        frame = self._dsets[line % self._dnsets].get(line)
        if frame is None:
            return
        old = frame.states.pop(off, None)
        frame.values.pop(off, None)
        self._untrack_valid(addr, old)

    # -- self-invalidation --------------------------------------------------

    def self_invalidate_region(self, region_id: int) -> int:
        """Invalidate all Valid words of ``region_id``; return count dropped.

        Registered words are untouched: registered data stays in the cache
        across synchronization boundaries (paper section 3, footnote 1).
        """
        addrs = self._valid_by_region.pop(region_id, None)
        if not addrs:
            return 0
        dropped = 0
        for addr in addrs:
            line = self.amap.line_of(addr)
            frame = self._dir.get(line, touch=False)
            if frame is None:
                continue
            off = self.amap.word_in_line(addr)
            if frame.states.get(off) is DeNovoState.VALID:
                frame.states.pop(off, None)
                frame.values.pop(off, None)
                dropped += 1
        return dropped

    def self_invalidate_all(self) -> int:
        """Invalidate every Valid word (the no-region-information fallback)."""
        dropped = 0
        for region_id in list(self._valid_by_region):
            dropped += self.self_invalidate_region(region_id)
        # Valid words with no known region live under key None.
        return dropped

    # -- internals ----------------------------------------------------------

    def _track_valid(self, addr: int) -> None:
        rmap = self._region_map
        if rmap is not None:
            region = rmap.get(addr)
            region_id = region.region_id if region is not None else None
        else:
            region_id = self._region_of_addr(addr)
        self._valid_by_region.setdefault(region_id, set()).add(addr)

    def _untrack_valid(self, addr: int, old_state: DeNovoState | None) -> None:
        if old_state is not DeNovoState.VALID:
            return
        rmap = self._region_map
        if rmap is not None:
            region = rmap.get(addr)
            region_id = region.region_id if region is not None else None
        else:
            region_id = self._region_of_addr(addr)
        bucket = self._valid_by_region.get(region_id)
        if bucket is not None:
            bucket.discard(addr)

    def _evict_frame(self, line: int, frame: DeNovoFrame) -> None:
        for off, st in list(frame.states.items()):
            addr = self.amap.line_base(line) + off
            if st is DeNovoState.REGISTERED and self._on_evict_registered:
                self._on_evict_registered(addr, frame.values[off])
            self._untrack_valid(addr, st)

    # -- audit / fault-injection accessors ----------------------------------

    def resident_lines(self) -> list[int]:
        return [line for line, _ in self._dir]

    def evict_line(self, line: int) -> DeNovoFrame | None:
        """Force-evict the frame of ``line`` with full writeback handling
        (as replacement would); return the evicted frame, or None if the
        line is not resident."""
        frame = self._dir.pop(line)
        if frame is not None:
            self._evict_frame(line, frame)
        return frame

    def words_and_states(self) -> list[tuple[int, DeNovoState]]:
        """Every cached (word address, state) pair (for invariant audits)."""
        out = []
        for line, frame in self._dir:
            base = self.amap.line_base(line)
            out.extend((base + off, st) for off, st in frame.states.items())
        return out

    def tracked_valid_words(self) -> set[int]:
        """Union of the region-indexed valid-word tracking sets.

        A superset of the actually-Valid words is legal (stale entries are
        filtered at self-invalidation time); a Valid word *missing* from
        it would escape self-invalidation — the invariant checker asserts
        that never happens.
        """
        tracked: set[int] = set()
        for bucket in self._valid_by_region.values():
            tracked |= bucket
        return tracked

    def __len__(self) -> int:
        return len(self._dir)
