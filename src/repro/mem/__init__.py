"""Memory substrate: addresses, regions, backing store, cache structures."""

from repro.mem.address import AddressMap
from repro.mem.memory import BackingStore
from repro.mem.regions import Region, RegionAllocator

__all__ = ["AddressMap", "BackingStore", "Region", "RegionAllocator"]
