"""The global backing store and LLC residency tracking.

The backing store holds the architecturally-latest value of every word.
Protocol invariants keep it coherent with the caches:

* MESI: a write invalidates all sharers at its commit point, so any cached
  copy a core can still hit on equals the backing-store value.
* DeNovo: a Registered word's cached copy is written through to the store
  at the owner's write commit, so registration transfers can always fill
  from the store; Valid copies may be stale, which is exactly the DeNovo
  semantics for data-race-free data.

The store also tracks which lines are LLC-resident so the first touch of a
line pays the memory (DRAM) latency.
"""

from __future__ import annotations


class BackingStore:
    """Word-addressed value store + LLC residency set."""

    def __init__(self) -> None:
        self._values: dict[int, int] = {}
        self._resident_lines: set[int] = set()

    def read(self, addr: int) -> int:
        """Architecturally-latest value of ``addr`` (0 if never written)."""
        return self._values.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self._values[addr] = value

    def snapshot(self) -> dict[int, int]:
        """Copy of every written word (addr -> value), for final-state
        comparison between runs (the chaos differential tests)."""
        return dict(self._values)

    def is_resident(self, line: int) -> bool:
        """True if ``line`` has been brought on-chip already."""
        return line in self._resident_lines

    def touch_line(self, line: int) -> bool:
        """Mark ``line`` LLC-resident; return True if this was a cold miss."""
        if line in self._resident_lines:
            return False
        self._resident_lines.add(line)
        return True

    def evict_line(self, line: int) -> None:
        """Drop ``line`` from the LLC (used by the app models to emulate
        footprints larger than the LLC)."""
        self._resident_lines.discard(line)

    @property
    def resident_line_count(self) -> int:
        return len(self._resident_lines)
