"""Named memory regions and the shared-variable allocator.

DeNovo's data-consistency story relies on compiler-provided *regions*:
groups of addresses that a synchronization acquire protects, so the
acquiring core can self-invalidate exactly those words.  The allocator
hands out word addresses for shared variables and records which region
each belongs to.  Synchronization variables are padded to their own cache
line by default, matching the common practice the paper notes ("most
software pads lock variables to avoid false sharing"); the lock-padding
ablation turns this off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.address import AddressMap


@dataclass(frozen=True, slots=True)
class Region:
    """A named region of shared memory, the unit of self-invalidation."""

    name: str
    region_id: int

    def __str__(self) -> str:
        return self.name


@dataclass
class Allocation:
    """One allocation: ``nwords`` words starting at ``base``."""

    base: int
    nwords: int
    region: Region

    @property
    def end(self) -> int:
        return self.base + self.nwords

    def __iter__(self):
        return iter(range(self.base, self.end))


class RegionAllocator:
    """Bump allocator over the simulated word-address space.

    Also the authority on which region owns each address, which the DeNovo
    L1s consult when tracking valid words for selective self-invalidation.
    """

    def __init__(self, amap: AddressMap, pad_sync_vars: bool = True) -> None:
        self.amap = amap
        self.pad_sync_vars = pad_sync_vars
        self._next_addr = amap.words_per_line  # keep address 0 unused
        self._regions: dict[str, Region] = {}
        self._region_of_addr: dict[int, Region] = {}
        self._allocations: list[Allocation] = []

    def region(self, name: str) -> Region:
        """Get or create the region named ``name``."""
        if name not in self._regions:
            self._regions[name] = Region(name=name, region_id=len(self._regions))
        return self._regions[name]

    def alloc(self, name: str, nwords: int = 1, *, line_align: bool = False) -> Allocation:
        """Allocate ``nwords`` consecutive words in region ``name``."""
        if nwords <= 0:
            raise ValueError("nwords must be positive")
        region = self.region(name)
        base = self._next_addr
        if line_align:
            base = self.amap.align_up_to_line(base)
        self._next_addr = base + nwords
        if line_align:
            # Keep the remainder of the last line unused so nothing else
            # ever shares these lines.
            self._next_addr = self.amap.align_up_to_line(self._next_addr)
        alloc = Allocation(base=base, nwords=nwords, region=region)
        for addr in alloc:
            self._region_of_addr[addr] = region
        self._allocations.append(alloc)
        return alloc

    def alloc_sync(self, name: str, nwords: int = 1) -> Allocation:
        """Allocate synchronization variables (padded to a line by default)."""
        return self.alloc(name, nwords, line_align=self.pad_sync_vars)

    def region_of(self, addr: int) -> Region | None:
        """Region owning ``addr`` (None for never-allocated addresses)."""
        return self._region_of_addr.get(addr)

    @property
    def allocations(self) -> list[Allocation]:
        return list(self._allocations)

    @property
    def words_allocated(self) -> int:
        return self._next_addr
