"""Address arithmetic.

All simulated addresses are *word indices* (a word is 4 bytes, the DeNovo
coherence granularity).  Cache lines are 16 words (64 bytes).  LLC banks
are interleaved at line granularity across the mesh tiles.

Every standard configuration has power-of-two words-per-line and bank
counts, so the mapping functions reduce to shift/mask operations.  The
shift/mask values are precomputed at construction and also exposed as
attributes (``line_shift``, ``offset_mask``, ``bank_mask``) so hot paths
can inline the arithmetic instead of paying a method call per access;
they are ``None`` for non-power-of-two geometries, where callers must
fall back to the generic methods.
"""

from __future__ import annotations

from repro.config import SystemConfig


def _shift_for(value: int) -> int | None:
    """log2(value) when value is a power of two, else None."""
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


class AddressMap:
    """Maps word addresses to lines, words-in-line, and home LLC banks."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.words_per_line = config.words_per_line
        self.num_banks = config.l2_banks
        #: ``addr >> line_shift == line_of(addr)`` when not None.
        self.line_shift = _shift_for(self.words_per_line)
        #: ``addr & offset_mask == word_in_line(addr)`` when line_shift is set.
        self.offset_mask = (
            self.words_per_line - 1 if self.line_shift is not None else None
        )
        #: ``line & bank_mask == home_bank(line)`` when not None.
        self.bank_mask = (
            self.num_banks - 1 if _shift_for(self.num_banks) is not None else None
        )

    def line_of(self, addr: int) -> int:
        """Cache-line id containing word ``addr``."""
        shift = self.line_shift
        if shift is not None:
            return addr >> shift
        return addr // self.words_per_line

    def word_in_line(self, addr: int) -> int:
        """Word offset of ``addr`` within its line."""
        mask = self.offset_mask
        if mask is not None:
            return addr & mask
        return addr % self.words_per_line

    def line_base(self, line: int) -> int:
        """Word address of the first word of ``line``."""
        shift = self.line_shift
        if shift is not None:
            return line << shift
        return line * self.words_per_line

    def words_of_line(self, line: int) -> range:
        """All word addresses in ``line``."""
        base = self.line_base(line)
        return range(base, base + self.words_per_line)

    def home_bank(self, line: int) -> int:
        """LLC bank (tile id) that is home for ``line``.

        Lines are interleaved across banks; with one bank per tile this is
        also the tile id used for mesh distance computations.
        """
        mask = self.bank_mask
        if mask is not None:
            return line & mask
        return line % self.num_banks

    def home_bank_of_addr(self, addr: int) -> int:
        return self.home_bank(self.line_of(addr))

    def align_up_to_line(self, addr: int) -> int:
        """Smallest line-aligned word address >= ``addr``."""
        rem = self.word_in_line(addr)
        if rem == 0:
            return addr
        return addr + (self.words_per_line - rem)
