"""Address arithmetic.

All simulated addresses are *word indices* (a word is 4 bytes, the DeNovo
coherence granularity).  Cache lines are 16 words (64 bytes).  LLC banks
are interleaved at line granularity across the mesh tiles.
"""

from __future__ import annotations

from repro.config import SystemConfig


class AddressMap:
    """Maps word addresses to lines, words-in-line, and home LLC banks."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.words_per_line = config.words_per_line
        self.num_banks = config.l2_banks

    def line_of(self, addr: int) -> int:
        """Cache-line id containing word ``addr``."""
        return addr // self.words_per_line

    def word_in_line(self, addr: int) -> int:
        """Word offset of ``addr`` within its line."""
        return addr % self.words_per_line

    def line_base(self, line: int) -> int:
        """Word address of the first word of ``line``."""
        return line * self.words_per_line

    def words_of_line(self, line: int) -> range:
        """All word addresses in ``line``."""
        base = self.line_base(line)
        return range(base, base + self.words_per_line)

    def home_bank(self, line: int) -> int:
        """LLC bank (tile id) that is home for ``line``.

        Lines are interleaved across banks; with one bank per tile this is
        also the tile id used for mesh distance computations.
        """
        return line % self.num_banks

    def home_bank_of_addr(self, addr: int) -> int:
        return self.home_bank(self.line_of(addr))

    def align_up_to_line(self, addr: int) -> int:
        """Smallest line-aligned word address >= ``addr``."""
        rem = addr % self.words_per_line
        if rem == 0:
            return addr
        return addr + (self.words_per_line - rem)
