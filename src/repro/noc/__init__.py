"""2D-mesh interconnect model: topology, message sizing, traffic accounting."""

from repro.noc.mesh import Mesh
from repro.noc.messages import MessageClass, control_flits, data_flits
from repro.noc.traffic import TrafficLedger

__all__ = ["Mesh", "MessageClass", "TrafficLedger", "control_flits", "data_flits"]
