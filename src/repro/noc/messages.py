"""Message classes and flit sizing.

The paper measures network traffic as flit crossings over links with 16-bit
flits.  We size messages as:

* control message (request, invalidation, ack, registration transfer):
  a 64-bit address plus type/ids, totalling 5 flits;
* data message: control header plus the payload at 1 flit per 2 bytes.

MESI always moves whole 64-byte cache lines (32 payload flits); DeNovo
moves only the valid words it needs (2 payload flits per 4-byte word),
which is one of the paper's main sources of traffic savings.
"""

from __future__ import annotations

from enum import Enum

#: Flits in a payload-free message (64-bit address + type + src/dst ids).
CONTROL_FLITS = 5

#: Payload bytes carried per 16-bit flit.
BYTES_PER_FLIT = 2


class MessageClass(Enum):
    """Traffic categories matching the paper's figure legends.

    MESI bars use LOAD / STORE / WRITEBACK / INVALIDATION; DeNovo bars use
    LOAD / STORE / SYNCH / WRITEBACK (the paper does not split MESI traffic
    into data vs. synchronization because its MESI does not distinguish them).
    """

    LOAD = "LD"
    STORE = "ST"
    SYNCH = "SYNCH"
    WRITEBACK = "WB"
    INVALIDATION = "Inv"


def control_flits() -> int:
    """Flit count of a control (payload-free) message."""
    return CONTROL_FLITS


def data_flits(payload_bytes: int) -> int:
    """Flit count of a message carrying ``payload_bytes`` of data."""
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    payload = (payload_bytes + BYTES_PER_FLIT - 1) // BYTES_PER_FLIT
    return CONTROL_FLITS + payload
