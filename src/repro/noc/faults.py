"""Deterministic fault injection: adversarial-but-legal event orderings.

The simulator is deterministic, which makes it reproducible — and blind:
a protocol race only shows up if the one ordering the event queue happens
to produce tickles it.  This module widens the explored schedule space
without giving up reproducibility.  A :class:`FaultPlan` (pure data,
seeded) describes perturbations that are all *legal* behaviours of the
modelled hardware:

* **delay jitter** — every completed access is stretched by a few extra
  cycles (NoC contention the latency model doesn't simulate), shifting
  every downstream race window;
* **bounded reordering** — a first-issue access is randomly deferred and
  re-issued (as a directory retry would be), changing the commit order of
  racing requests while each core's own program order is untouched;
* **eviction storms** — periodic forced L1 evictions with full protocol
  bookkeeping (writeback, directory/registry update, waiter wake-up),
  simulating far higher capacity pressure than the footprint causes
  naturally — this is the exact stressor behind the PR-1 sleeping-waiter
  bug;
* **scripted evictions** — exact ``(cycle, core, line)`` triples, for
  regression tests that must hit a specific race window.

:class:`FaultInjector` applies a plan as a transparent protocol wrapper
(same shape as :class:`~repro.trace.recorder.TracingProtocol`); the
runner wraps it innermost and calls :meth:`FaultInjector.attach` to
schedule the storm events.  Under a correct protocol, any plan must leave
final memory state identical to the unperturbed run for deterministic
workloads — asserted by the chaos differential tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable

from repro.mem.regions import Region
from repro.protocols.base import Access, CoherenceProtocol


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the perturbations to apply to one run.

    All fields default to "no perturbation"; ``seed`` feeds a dedicated
    RNG so fault decisions are reproducible and independent of the
    workload's own seeding.
    """

    seed: int = 0
    #: Max extra cycles added to each completed access's latency.
    delay_jitter: int = 0
    #: Probability of deferring a first-issue access (forced retry).
    reorder_prob: float = 0.0
    #: Max cycles a deferred access stalls before its forced re-issue.
    reorder_delay: int = 16
    #: Cycles between eviction storms (0 disables storms).
    evict_period: int = 0
    #: Random (core, line) evictions attempted per storm.
    evict_lines: int = 1
    #: Exact (cycle, core_id, line) evictions, for regression tests.
    scripted_evictions: tuple = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.reorder_prob <= 1.0:
            raise ValueError(
                f"reorder_prob must be in [0, 1], got {self.reorder_prob!r}"
            )
        if self.delay_jitter < 0 or self.evict_period < 0:
            raise ValueError("delay_jitter and evict_period must be >= 0")
        if self.reorder_delay < 1:
            raise ValueError(f"reorder_delay must be >= 1, got {self.reorder_delay!r}")

    @property
    def active(self) -> bool:
        return bool(
            self.delay_jitter
            or self.reorder_prob
            or self.evict_period
            or self.scripted_evictions
        )


class FaultInjector:
    """Apply a :class:`FaultPlan` while delegating to ``inner``.

    ``injected_delay`` / ``deferrals`` / ``forced_evictions`` count what
    was actually injected (tests assert plans took effect).
    """

    def __init__(self, inner: CoherenceProtocol, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.rng = random.Random((plan.seed << 1) ^ 0x5EED)
        self.injected_delay = 0
        self.deferrals = 0
        self.forced_evictions = 0
        self._sim = None
        self._keep_running: Callable[[], bool] = lambda: True

    # -- scheduling hooks (called by the runner) ---------------------------

    def attach(self, sim, keep_running: Callable[[], bool] | None = None) -> None:
        """Schedule this plan's eviction events on ``sim``.

        ``keep_running`` gates storm rescheduling (the runner passes
        "some core is still executing") so storms don't keep the event
        queue alive after the workload finishes.
        """
        self._sim = sim
        if keep_running is not None:
            self._keep_running = keep_running
        for cycle, core_id, line in self.plan.scripted_evictions:
            sim.schedule_at(
                cycle, lambda c=core_id, ln=line: self._scripted_evict(c, ln)
            )
        if self.plan.evict_period > 0:
            sim.schedule_after(self.plan.evict_period, self._storm_tick)

    def _scripted_evict(self, core_id: int, line: int) -> None:
        self.inner.set_time(self._sim.now)
        if self.inner.force_evict(core_id, line):
            self.forced_evictions += 1

    def _storm_tick(self) -> None:
        if not self._keep_running():
            return
        self.inner.set_time(self._sim.now)
        num_cores = self.inner.config.num_cores
        for _ in range(self.plan.evict_lines):
            core_id = self.rng.randrange(num_cores)
            lines = self.inner.debug_resident_lines(core_id)
            if not lines:
                continue
            line = self.rng.choice(lines)
            if self.inner.force_evict(core_id, line):
                self.forced_evictions += 1
        self._sim.schedule_after(self.plan.evict_period, self._storm_tick)

    # -- perturbation helpers ----------------------------------------------

    def _defer(self, ticketed: bool) -> Access | None:
        """Maybe turn a first-issue access into a forced retry.

        The core re-issues with ``ticketed=True`` (exactly as after a real
        directory retry), so a deferred access is never deferred twice and
        the access commits at its *re-issue* time — a bounded reordering
        of racing requests' service order.
        """
        if ticketed or not self.plan.reorder_prob:
            return None
        if self.rng.random() >= self.plan.reorder_prob:
            return None
        self.deferrals += 1
        delay = self.rng.randint(1, self.plan.reorder_delay)
        return Access(0, delay, hit=False, retry=True)

    def _jitter(self, access: Access) -> Access:
        if self.plan.delay_jitter and not access.retry:
            extra = self.rng.randint(0, self.plan.delay_jitter)
            access.latency += extra
            self.injected_delay += extra
        return access

    # -- delegated attributes the cores/runner rely on ---------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def config(self):
        return self.inner.config

    @property
    def memory(self):
        return self.inner.memory

    @property
    def traffic(self):
        return self.inner.traffic

    @property
    def counters(self):
        return self.inner.counters

    @property
    def now(self) -> int:
        return self.inner.now

    @property
    def allocator(self):
        return self.inner.allocator

    def set_time(self, now: int) -> None:
        self.inner.set_time(now)

    def sync_read_backoff(self, core_id: int, addr: int, spinning: bool = False) -> int:
        return self.inner.sync_read_backoff(core_id, addr, spinning=spinning)

    def subscribe_line_change(self, core_id, addr, callback) -> bool:
        return self.inner.subscribe_line_change(core_id, addr, callback)

    def on_acquire(self, core_id: int, addr: int) -> None:
        self.inner.on_acquire(core_id, addr)

    def check_invariants(self) -> None:
        self.inner.check_invariants()

    def invariant_violations(self) -> list[str]:
        return self.inner.invariant_violations()

    def force_evict(self, core_id: int, line: int) -> bool:
        return self.inner.force_evict(core_id, line)

    def debug_resident_lines(self, core_id: int) -> list[int]:
        return self.inner.debug_resident_lines(core_id)

    def debug_addr_state(self, addr: int) -> str:
        return self.inner.debug_addr_state(addr)

    def debug_transients(self) -> list[str]:
        """The injector's own in-flight state, for hang dumps."""
        out = []
        if self.plan.active:
            out.append(
                f"fault plan: seed={self.plan.seed} "
                f"jitter<={self.plan.delay_jitter} "
                f"reorder_prob={self.plan.reorder_prob} "
                f"evict_period={self.plan.evict_period} "
                f"(injected: {self.injected_delay} delay cycles, "
                f"{self.deferrals} deferrals, "
                f"{self.forced_evictions} forced evictions)"
            )
        return out

    # -- perturbed operations ----------------------------------------------

    def load(
        self,
        core_id: int,
        addr: int,
        sync: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        deferred = self._defer(ticketed)
        if deferred is not None:
            return deferred
        return self._jitter(
            self.inner.load(core_id, addr, sync=sync, ticketed=ticketed, acquire=acquire)
        )

    def store(
        self,
        core_id: int,
        addr: int,
        value: int,
        sync: bool = False,
        release: bool = False,
        ticketed: bool = False,
    ) -> Access:
        deferred = self._defer(ticketed)
        if deferred is not None:
            return deferred
        return self._jitter(
            self.inner.store(
                core_id, addr, value, sync=sync, release=release, ticketed=ticketed
            )
        )

    def rmw(
        self,
        core_id: int,
        addr: int,
        fn: Callable[[int], int | None],
        release: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        deferred = self._defer(ticketed)
        if deferred is not None:
            return deferred
        return self._jitter(
            self.inner.rmw(
                core_id, addr, fn, release=release, ticketed=ticketed, acquire=acquire
            )
        )

    def self_invalidate(
        self, core_id: int, regions: list[Region], flush_all: bool = False
    ) -> int:
        return self.inner.self_invalidate(core_id, regions, flush_all=flush_all)
