"""2D mesh topology and hop-based latency interpolation.

Tiles are laid out row-major on a square mesh; each tile holds one core and
one LLC bank (NUCA).  Memory controllers sit at the four mesh corners.
Distances are Manhattan (dimension-ordered routing).  Latency for an access
is interpolated between the Table 1 min (0 hops) and max (farthest tile)
for the relevant access class, so the simulated system reproduces the
paper's latency ranges exactly.

Every value is a pure function of the (static) topology, so the
constructor precomputes them once — the hop matrix, the nearest
controller per tile, per-(core, bank) interpolated latency matrices and a
per-leg remote-L1 table — and the public methods become table lookups.
The tables are filled by evaluating the original closed-form expressions,
so the numbers are bit-for-bit what the formulas produce.
"""

from __future__ import annotations

from repro.config import SystemConfig


class Mesh:
    """Topology and latency model for one simulated system."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.side = config.mesh_side
        self._controller_tiles = self._corner_tiles()
        n = self._num_tiles = config.num_cores
        max_hops = config.max_hops

        # Hop matrix (flat, row-major: hops(src, dst) = _hops[src * n + dst]).
        coords = [self._coords_of(tile) for tile in range(n)]
        hops = [0] * (n * n)
        for src, (sx, sy) in enumerate(coords):
            row = src * n
            for dst, (dx, dy) in enumerate(coords):
                hops[row + dst] = abs(sx - dx) + abs(sy - dy)
        self._hops = hops

        self._nearest_controller = [
            min(self._controller_tiles, key=lambda c: (hops[tile * n + c], c))
            for tile in range(n)
        ]

        # Per-leg latency tables (a leg never exceeds 2 * (side - 1) hops).
        leg_range = range(2 * (self.side - 1) + 1)
        self._l2_by_leg = [
            config.l2_hit_latency.interpolate(leg, max_hops) for leg in leg_range
        ]
        self._remote_by_leg = [
            config.remote_l1_latency.interpolate(leg, max_hops) for leg in leg_range
        ]
        self._memory_by_leg = [
            config.memory_latency.interpolate(leg, max_hops) for leg in leg_range
        ]

        # Per-(core, bank) matrices for the two-argument lookups.
        self._l2_latency = [self._l2_by_leg[h] for h in hops]
        memory_latency = [0] * (n * n)
        inv_rtt = [0] * (n * n)
        per_hop = self.per_hop_cycles()
        inv_processing = config.tuning.inv_processing
        for a in range(n):
            row = a * n
            for b in range(n):
                controller = self._nearest_controller[b]
                leg = max(hops[row + b], hops[b * n + controller])
                memory_latency[row + b] = self._memory_by_leg[leg]
                inv_rtt[row + b] = (
                    round(2 * hops[row + b] * per_hop) + inv_processing
                )
        self._memory_latency = memory_latency
        self._inv_round_trip = inv_rtt

    def _corner_tiles(self) -> tuple[int, ...]:
        """Tile ids of the four on-chip memory controllers (mesh corners)."""
        side = self.side
        if side == 1:
            return (0,)
        return (0, side - 1, side * (side - 1), side * side - 1)

    def _coords_of(self, tile: int) -> tuple[int, int]:
        return tile % self.side, tile // self.side

    def coords(self, tile: int) -> tuple[int, int]:
        """(x, y) coordinates of a tile id."""
        if not 0 <= tile < self._num_tiles:
            raise ValueError(f"tile {tile} out of range")
        return self._coords_of(tile)

    def hops(self, src: int, dst: int) -> int:
        """One-way Manhattan hop distance between two tiles."""
        n = self._num_tiles
        if not (0 <= src < n and 0 <= dst < n):
            raise ValueError(f"tile {src if not 0 <= src < n else dst} out of range")
        return self._hops[src * n + dst]

    def nearest_controller(self, tile: int) -> int:
        """Tile id of the memory controller closest to ``tile``."""
        return self._nearest_controller[tile]

    # -- latency interpolation over Table 1 ranges ------------------------

    def l2_access_latency(self, core: int, bank: int) -> int:
        """Latency of an L1 miss serviced at LLC bank ``bank`` (round trip)."""
        return self._l2_latency[core * self._num_tiles + bank]

    def remote_l1_latency(self, core: int, bank: int, owner: int) -> int:
        """Latency of an L1 miss forwarded by the home bank to a remote L1.

        Interpolated over the longer of the two legs (home, owner) so the
        0-hop case costs the Table 1 minimum and the farthest case the max.
        """
        n = self._num_tiles
        hops = self._hops
        a = hops[core * n + bank]
        b = hops[bank * n + owner]
        return self._remote_by_leg[a if a > b else b]

    def memory_latency(self, core: int, bank: int) -> int:
        """Latency of an access that misses the LLC and goes to memory."""
        return self._memory_latency[core * self._num_tiles + bank]

    def per_hop_cycles(self) -> float:
        """One-way per-hop network cost implied by the Table 1 L2 range."""
        if self.config.max_hops == 0:
            return 0.0
        span = self.config.l2_hit_latency.max - self.config.l2_hit_latency.min
        return span / (2 * self.config.max_hops)

    def invalidation_round_trip(self, bank: int, sharer: int) -> int:
        """Invalidate-and-ack round trip between the home bank and a sharer.

        Two control messages over the mesh plus a small processing cost at
        the sharer.  Charged on the critical path of a MESI write/upgrade
        (write atomicity: the write completes only after all acks).
        """
        return self._inv_round_trip[bank * self._num_tiles + sharer]
