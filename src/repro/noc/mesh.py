"""2D mesh topology and hop-based latency interpolation.

Tiles are laid out row-major on a square mesh; each tile holds one core and
one LLC bank (NUCA).  Memory controllers sit at the four mesh corners.
Distances are Manhattan (dimension-ordered routing).  Latency for an access
is interpolated between the Table 1 min (0 hops) and max (farthest tile)
for the relevant access class, so the simulated system reproduces the
paper's latency ranges exactly.
"""

from __future__ import annotations

from repro.config import SystemConfig


class Mesh:
    """Topology and latency model for one simulated system."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.side = config.mesh_side
        self._controller_tiles = self._corner_tiles()

    def _corner_tiles(self) -> tuple[int, ...]:
        """Tile ids of the four on-chip memory controllers (mesh corners)."""
        side = self.side
        if side == 1:
            return (0,)
        return (0, side - 1, side * (side - 1), side * side - 1)

    def coords(self, tile: int) -> tuple[int, int]:
        """(x, y) coordinates of a tile id."""
        if not 0 <= tile < self.config.num_cores:
            raise ValueError(f"tile {tile} out of range")
        return tile % self.side, tile // self.side

    def hops(self, src: int, dst: int) -> int:
        """One-way Manhattan hop distance between two tiles."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def nearest_controller(self, tile: int) -> int:
        """Tile id of the memory controller closest to ``tile``."""
        return min(self._controller_tiles, key=lambda c: (self.hops(tile, c), c))

    # -- latency interpolation over Table 1 ranges ------------------------

    def l2_access_latency(self, core: int, bank: int) -> int:
        """Latency of an L1 miss serviced at LLC bank ``bank`` (round trip)."""
        return self.config.l2_hit_latency.interpolate(
            self.hops(core, bank), self.config.max_hops
        )

    def remote_l1_latency(self, core: int, bank: int, owner: int) -> int:
        """Latency of an L1 miss forwarded by the home bank to a remote L1.

        Interpolated over the longer of the two legs (home, owner) so the
        0-hop case costs the Table 1 minimum and the farthest case the max.
        """
        leg = max(self.hops(core, bank), self.hops(bank, owner))
        return self.config.remote_l1_latency.interpolate(leg, self.config.max_hops)

    def memory_latency(self, core: int, bank: int) -> int:
        """Latency of an access that misses the LLC and goes to memory."""
        controller = self.nearest_controller(bank)
        leg = max(self.hops(core, bank), self.hops(bank, controller))
        return self.config.memory_latency.interpolate(leg, self.config.max_hops)

    def per_hop_cycles(self) -> float:
        """One-way per-hop network cost implied by the Table 1 L2 range."""
        if self.config.max_hops == 0:
            return 0.0
        span = self.config.l2_hit_latency.max - self.config.l2_hit_latency.min
        return span / (2 * self.config.max_hops)

    def invalidation_round_trip(self, bank: int, sharer: int) -> int:
        """Invalidate-and-ack round trip between the home bank and a sharer.

        Two control messages over the mesh plus a small processing cost at
        the sharer.  Charged on the critical path of a MESI write/upgrade
        (write atomicity: the write completes only after all acks).
        """
        processing = self.config.tuning.inv_processing
        return round(2 * self.hops(bank, sharer) * self.per_hop_cycles()) + processing
