"""Traffic accounting: flit crossings per link, by message class.

The paper's traffic metric is "flit crossings across all network links":
a message of F flits traversing H links contributes F * H units.  Messages
between co-located units (a core and its own LLC bank) cross zero links
and contribute nothing.
"""

from __future__ import annotations

from collections import Counter

from repro.noc.messages import MessageClass


class TrafficLedger:
    """Accumulates flit-crossing counts, keyed by :class:`MessageClass`."""

    def __init__(self) -> None:
        self._flits: Counter[MessageClass] = Counter()
        self._messages: Counter[MessageClass] = Counter()

    def record(self, klass: MessageClass, flits: int, hops: int) -> None:
        """Record one message of ``flits`` flits crossing ``hops`` links."""
        if flits < 0 or hops < 0:
            raise ValueError("flits and hops must be non-negative")
        self._flits[klass] += flits * hops
        self._messages[klass] += 1

    def flit_crossings(self, klass: MessageClass | None = None) -> int:
        """Total flit crossings, optionally restricted to one class."""
        if klass is None:
            return sum(self._flits.values())
        return self._flits[klass]

    def message_count(self, klass: MessageClass | None = None) -> int:
        if klass is None:
            return sum(self._messages.values())
        return self._messages[klass]

    def breakdown(self) -> dict[str, int]:
        """Flit crossings by class label, as used in the figure legends."""
        return {klass.value: self._flits[klass] for klass in MessageClass}

    def merged_with(self, other: "TrafficLedger") -> "TrafficLedger":
        # Counter.__add__ silently drops zero-count keys (a recorded
        # zero-hop message class would vanish from the merge); update()
        # preserves every key either side has seen.
        merged = TrafficLedger()
        merged._flits.update(self._flits)
        merged._flits.update(other._flits)
        merged._messages.update(self._messages)
        merged._messages.update(other._messages)
        return merged
