"""Traffic accounting: flit crossings per link, by message class.

The paper's traffic metric is "flit crossings across all network links":
a message of F flits traversing H links contributes F * H units.  Messages
between co-located units (a core and its own LLC bank) cross zero links
and contribute nothing.

``record`` runs once per protocol message, so the per-class counts are
fixed-size int lists indexed by ``MessageClass.<member>.idx`` instead of
``Counter[MessageClass]`` (enum hashing is slow Python-level code).  Keys
outside :class:`MessageClass` — say a protocol extension's private enum —
land in a side table, which makes :meth:`breakdown` *total* by
construction: every key ever recorded appears in it, and every
``MessageClass`` member appears even at zero.
"""

from __future__ import annotations

from repro.noc.messages import MessageClass

#: Dense ordinal used to index the per-class arrays.
for _i, _klass in enumerate(MessageClass):
    _klass.idx = _i
_NUM_CLASSES = len(MessageClass)


def _label(klass) -> str:
    """Figure-legend label for a recorded key (enum value or repr)."""
    return str(getattr(klass, "value", klass))


class TrafficLedger:
    """Accumulates flit-crossing counts, keyed by :class:`MessageClass`."""

    __slots__ = ("_flits", "_messages", "_extra_flits", "_extra_messages")

    def __init__(self) -> None:
        self._flits: list[int] = [0] * _NUM_CLASSES
        self._messages: list[int] = [0] * _NUM_CLASSES
        # Non-MessageClass keys (kept so breakdown() stays total).
        self._extra_flits: dict = {}
        self._extra_messages: dict = {}

    def record(self, klass: MessageClass, flits: int, hops: int) -> None:
        """Record one message of ``flits`` flits crossing ``hops`` links."""
        if flits < 0 or hops < 0:
            raise ValueError("flits and hops must be non-negative")
        try:
            idx = klass.idx
        except AttributeError:
            self._extra_flits[klass] = self._extra_flits.get(klass, 0) + flits * hops
            self._extra_messages[klass] = self._extra_messages.get(klass, 0) + 1
            return
        self._flits[idx] += flits * hops
        self._messages[idx] += 1

    def flit_crossings(self, klass: MessageClass | None = None) -> int:
        """Total flit crossings, optionally restricted to one class."""
        if klass is None:
            return sum(self._flits) + sum(self._extra_flits.values())
        try:
            return self._flits[klass.idx]
        except AttributeError:
            return self._extra_flits.get(klass, 0)

    def message_count(self, klass: MessageClass | None = None) -> int:
        if klass is None:
            return sum(self._messages) + sum(self._extra_messages.values())
        try:
            return self._messages[klass.idx]
        except AttributeError:
            return self._extra_messages.get(klass, 0)

    def breakdown(self) -> dict[str, int]:
        """Flit crossings by class label, as used in the figure legends.

        Total over every recorded key: all :class:`MessageClass` members
        (zero counts included) plus any foreign key ever passed to
        :meth:`record`.
        """
        flits = self._flits
        out = {klass.value: flits[klass.idx] for klass in MessageClass}
        for klass, crossings in self._extra_flits.items():
            out[_label(klass)] = out.get(_label(klass), 0) + crossings
        return out

    def merged_with(self, other: "TrafficLedger") -> "TrafficLedger":
        # Fixed-size arrays make the merge trivially total: every class
        # either side has seen survives, zero-count classes included.
        merged = TrafficLedger()
        merged._flits = [a + b for a, b in zip(self._flits, other._flits)]
        merged._messages = [a + b for a, b in zip(self._messages, other._messages)]
        for src in (self, other):
            for klass, crossings in src._extra_flits.items():
                merged._extra_flits[klass] = (
                    merged._extra_flits.get(klass, 0) + crossings
                )
            for klass, count in src._extra_messages.items():
                merged._extra_messages[klass] = (
                    merged._extra_messages.get(klass, 0) + count
                )
        return merged
