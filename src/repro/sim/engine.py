"""Discrete-event simulation engine.

All simulated activity is ordered through a single logical event queue
keyed by (cycle, sequence-number).  The sequence number makes the
simulation fully deterministic: two events scheduled for the same cycle
fire in the order they were scheduled.

Internally the queue is a hybrid of two structures (the determinism
contract above is independent of which structure an event lands in):

* a **bucket wheel** of ``WHEEL_SIZE`` per-cycle buckets for events within
  the near-future window ``[now, now + WHEEL_SIZE)``, where almost every
  event lands (operation latencies are small bounded integers).  Insert
  is an O(1) list append; finding the next occupied cycle is a couple of
  big-int bit operations on an occupancy bitmap instead of a bucket scan.
* a **binary heap** for the rare far-out events (multi-thousand-cycle
  hardware backoffs, watchdog horizons).  Heap entries are plain lists
  ``[time, seq, ...]`` so ``heapq`` compares them at C speed; (time, seq)
  is unique, so a comparison never reaches the non-ordered fields.

Hot-path scheduling goes through :meth:`Simulator.call_at` /
:meth:`Simulator.call_after`, which take a prebound ``(callback, arg)``
pair, return no handle, and recycle entry storage through a free list —
zero allocations per event in steady state.  The classic
:meth:`schedule_at` / :meth:`schedule_after` API returns a cancellable
:class:`Event` handle and is unchanged.

Free-list lifetime rules: only entries created by ``call_at`` /
``call_after`` are recyclable.  They are never handed out (no handle →
no cancel → no external alias), so an entry can be recycled as soon as
the engine drops its last internal reference: immediately after firing
for heap entries, and at bucket-clear time for wheel entries.  Entries
backing a public :class:`Event` are never recycled — the handle may
outlive the firing.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from collections.abc import Callable

#: Sentinel ``arg`` meaning "invoke the callback with no argument".
_NO_ARG = object()

# Entry layout (a plain list; index constants below):
#   [0] time          absolute firing cycle
#   [1] seq           global schedule order (ties within a cycle)
#   [2] callback      None once fired or cancelled (the liveness test)
#   [3] arg           _NO_ARG, or the single positional argument
#   [4] scheduled_at  cycle the entry was created (for error notes)
#   [5] flags         _F_RECYCLABLE and/or _F_IN_HEAP
_F_RECYCLABLE = 1  # internal call_at/call_after entry: may enter the free list
_F_IN_HEAP = 2  # lives in the heap, not the wheel (cancel bookkeeping)


class Event:
    """A handle for a scheduled callback (cancellation + introspection).

    ``cancel()`` is idempotent; cancelling an event that already fired is
    a no-op.  The handle stays valid after the event fires.
    """

    __slots__ = ("_entry", "_sim", "_cancelled")

    def __init__(self, entry: list, sim: "Simulator"):
        self._entry = entry
        self._sim = sim
        self._cancelled = False

    @property
    def time(self) -> int:
        return self._entry[0]

    @property
    def seq(self) -> int:
        return self._entry[1]

    @property
    def scheduled_at(self) -> int:
        return self._entry[4]

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        if self._cancelled:
            return
        entry = self._entry
        if entry[2] is None:  # already fired
            return
        self._cancelled = True
        entry[2] = None
        self._sim._event_cancelled(entry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else (
            "fired" if self._entry[2] is None else "pending"
        )
        return f"Event(time={self._entry[0]}, seq={self._entry[1]}, {state})"


class Simulator:
    """A minimal deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(10, lambda: fired.append(sim.now))
    >>> sim.run()
    1
    >>> fired
    [10]
    """

    #: Cycles covered by the bucket wheel; events further out go to the
    #: heap.  Must be a power of two (bucket index is ``time & mask``).
    WHEEL_SIZE = 1024

    #: Compact a queue side once it holds at least this many entries and
    #: cancelled entries outnumber live ones (see :meth:`_event_cancelled`).
    COMPACT_MIN_SIZE = 64

    #: Epoch execution (see :meth:`_run_epoch`): batched advancement of
    #: uncontended stretches.  On by default; the harness overrides it
    #: from ``SystemConfig.epoch_mode`` (CLI ``--no-epoch``).  The firing
    #: order is byte-identical either way — the flag only selects which
    #: run loop walks the queue.
    epoch_mode = True

    def __init__(self) -> None:
        size = self.WHEEL_SIZE
        # Instance copy of the class constant: the scheduling hot path
        # reads it every call, and an instance attribute resolves without
        # the failed-instance-then-type lookup.
        self._wsize = size
        self._wheel: list[list] = [[] for _ in range(size)]
        self._wheel_mask = size - 1
        self._occ = 0  # bitmap: bit i set when bucket i is non-empty
        self._occ_full = (1 << size) - 1
        self._wheel_live = 0  # live (non-cancelled, unfired) wheel entries
        self._wheel_dead = 0  # cancelled wheel entries not yet reclaimed
        self._heap: list[list] = []
        self._heap_live = 0
        self._seq = 0
        self._free: list[list] = []  # recycled internal entries
        # The bucket currently being drained: entries at index <
        # _drain_pos of bucket (_drain_time & mask) are dead (fired or
        # cancelled) and are skipped without re-inspection.
        self._drain_time = -1
        self._drain_pos = 0
        # Cached by _peek for the immediately following _take.
        self._found: tuple | None = None
        self.now = 0
        #: Cycle of the most recent *architectural* progress.  Cores stamp
        #: this every time an operation retires; the liveness watchdog
        #: (:mod:`repro.sim.watchdog`) compares it against ``now`` to
        #: detect livelock (events firing, clock advancing, nothing
        #: retiring).
        self.progress_cycle = 0
        #: Optional :class:`~repro.sim.watchdog.Watchdog`; when set,
        #: :meth:`run` polls it every ``watchdog.check_interval`` events.
        self.watchdog = None
        #: Optional :class:`~repro.mc.controller.ScheduleController`.  When
        #: set, every :class:`~repro.cpu.core.Core` *gates* at each visible
        #: memory-operation boundary: instead of issuing the operation it
        #: parks a continuation with the controller and waits to be
        #: released.  The model checker uses this to serialize and choose
        #: the interleaving of visible operations; normal runs leave it
        #: None and pay one attribute test per operation.
        self.controller = None
        # Epoch-execution counters (see _run_epoch / epoch_stats).
        # _epoch_spin_elided is bumped by cores when a spin fast-forward
        # lease replaces a full spin probe with a closed-form tick.
        self._epoch_epochs = 0
        self._epoch_batched = 0
        self._epoch_spin_elided = 0
        self._epoch_fallbacks: dict[str, int] = {}

    # -- scheduling ---------------------------------------------------------

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute cycle ``time``; returns a handle."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        seq = self._seq
        self._seq = seq + 1
        entry = [time, seq, callback, _NO_ARG, self.now, 0]
        self._insert(entry, time)
        return Event(entry, self)

    def schedule_after(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback)

    def call_at(self, time: int, callback: Callable, arg=_NO_ARG) -> None:
        """Hot-path schedule: no handle, no allocation in steady state.

        ``callback`` fires as ``callback(arg)`` (or ``callback()`` when
        ``arg`` is omitted).  The entry storage is recycled through a
        free list; there is no way to cancel.
        """
        now = self.now
        if time < now:
            raise ValueError(f"cannot schedule in the past ({time} < {now})")
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = seq
            entry[2] = callback
            entry[3] = arg
            entry[4] = now
            entry[5] = _F_RECYCLABLE
        else:
            entry = [time, seq, callback, arg, now, _F_RECYCLABLE]
        if time - now < self._wsize:
            idx = time & self._wheel_mask
            bucket = self._wheel[idx]
            if not bucket:
                # A non-empty bucket already has its bit set (bits clear
                # only when a bucket is emptied), so the WHEEL_SIZE-bit
                # bitmap OR is paid once per bucket activation, not once
                # per insert.
                self._occ |= 1 << idx
            bucket.append(entry)
            self._wheel_live += 1
        else:
            entry[5] = _F_RECYCLABLE | _F_IN_HEAP
            heappush(self._heap, entry)
            self._heap_live += 1

    def call_after(self, delay: int, callback: Callable, arg=_NO_ARG) -> None:
        """Hot-path relative schedule; see :meth:`call_at`.

        The :meth:`call_at` body is inlined (minus the cannot-schedule-
        in-the-past check, subsumed by the delay sign check): cores
        schedule nearly every event through here, and the extra frame
        was measurable.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        now = self.now
        time = now + delay
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = seq
            entry[2] = callback
            entry[3] = arg
            entry[4] = now
            entry[5] = _F_RECYCLABLE
        else:
            entry = [time, seq, callback, arg, now, _F_RECYCLABLE]
        if delay < self._wsize:
            idx = time & self._wheel_mask
            bucket = self._wheel[idx]
            if not bucket:
                self._occ |= 1 << idx
            bucket.append(entry)
            self._wheel_live += 1
        else:
            entry[5] = _F_RECYCLABLE | _F_IN_HEAP
            heappush(self._heap, entry)
            self._heap_live += 1

    def _insert(self, entry: list, time: int) -> None:
        """Place a fresh entry in the wheel or the overflow heap."""
        if time - self.now < self._wsize:
            idx = time & self._wheel_mask
            bucket = self._wheel[idx]
            if not bucket:
                self._occ |= 1 << idx
            bucket.append(entry)
            self._wheel_live += 1
        else:
            entry[5] |= _F_IN_HEAP
            heappush(self._heap, entry)
            self._heap_live += 1

    # -- cancellation -------------------------------------------------------

    def _event_cancelled(self, entry: list) -> None:
        """Maintain live counters on cancel; compact mostly-dead storage.

        The exploration driver cancels heavily, so each side is rebuilt
        from the survivors once cancelled entries outnumber live ones
        (amortized O(1) per cancel).
        """
        if entry[5] & _F_IN_HEAP:
            self._heap_live -= 1
            heap = self._heap
            if len(heap) >= self.COMPACT_MIN_SIZE and self._heap_live * 2 < len(heap):
                self._heap = [e for e in heap if e[2] is not None]
                heapify(self._heap)
        else:
            self._wheel_live -= 1
            self._wheel_dead += 1
            if (
                self._wheel_live + self._wheel_dead >= self.COMPACT_MIN_SIZE
                and self._wheel_live < self._wheel_dead
            ):
                self._compact_wheel()

    def _compact_wheel(self) -> None:
        """Drop every dead entry from every bucket; rebuild the bitmap."""
        occ = 0
        free = self._free
        for idx, bucket in enumerate(self._wheel):
            if not bucket:
                continue
            live = [e for e in bucket if e[2] is not None]
            for e in bucket:
                if e[2] is None and e[5] & _F_RECYCLABLE:
                    free.append(e)
            if live:
                bucket[:] = live
                occ |= 1 << idx
            else:
                bucket.clear()
        self._occ = occ
        self._wheel_dead = 0
        # Dead prefixes are gone; restart the drain bucket (only live
        # entries of the drained cycle, if any, remain, now at index 0).
        self._drain_pos = 0
        self._found = None

    # -- queue inspection ---------------------------------------------------

    def _peek(self) -> list | None:
        """Earliest live entry without consuming it (or None).

        Caches the entry's location for the :meth:`_take` that follows.
        """
        heap = self._heap
        while heap and heap[0][2] is None:
            e = heappop(heap)
            if e[5] & _F_RECYCLABLE:  # pragma: no cover - internal entries
                self._free.append(e)  # cannot be cancelled; defensive only
        wheel_entry = None
        if self._wheel_live:
            now = self.now
            mask = self._wheel_mask
            size = self.WHEEL_SIZE
            while True:
                occ = self._occ
                if occ == 0:
                    break
                base = now & mask
                # Any *live* wheel entry lies in [now, now + size), so
                # the next candidate bucket is the lowest occupied index
                # >= base, else (wrapping) the lowest occupied index
                # overall.  Splitting high/low avoids materializing a
                # rotated copy of the (WHEEL_SIZE-bit) bitmap.
                high = occ >> base
                if high:
                    t = now + ((high & -high).bit_length() - 1)
                else:
                    t = now + size - base + ((occ & -occ).bit_length() - 1)
                idx = t & mask
                bucket = self._wheel[idx]
                pos = self._drain_pos if t == self._drain_time else 0
                n = len(bucket)
                while pos < n:
                    e = bucket[pos]
                    if e[2] is not None:
                        break
                    pos += 1
                else:
                    # Nothing live in this bucket: reclaim it (dead
                    # tombstones, possibly from cycles long past) and
                    # drop its occupancy bit, then look again.
                    self._reclaim_bucket(idx, bucket)
                    continue
                wheel_entry = e
                if t == self._drain_time:
                    self._drain_pos = pos  # skip the dead prefix for good
                break
        if wheel_entry is None:
            if heap:
                head = heap[0]
                self._found = (head, None, 0, True)
                return head
            self._found = None
            return None
        if heap:
            head = heap[0]
            ht = head[0]
            t = wheel_entry[0]
            if ht < t or (ht == t and head[1] < wheel_entry[1]):
                self._found = (head, None, 0, True)
                return head
        self._found = (wheel_entry, bucket, pos, False)
        return wheel_entry

    def _reclaim_bucket(self, idx: int, bucket: list) -> None:
        """Clear a bucket containing only dead entries."""
        free = self._free
        dead = 0
        for e in bucket:
            if e[5] & _F_RECYCLABLE:
                free.append(e)
            else:
                dead += 1
        # Cancelled (public) tombstones leave with the bucket; keep the
        # compaction trigger roughly honest.
        if dead and self._wheel_dead:
            self._wheel_dead = max(0, self._wheel_dead - dead)
        bucket.clear()
        self._occ &= ~(1 << idx)
        if idx == (self._drain_time & self._wheel_mask):
            self._drain_time = -1
            self._drain_pos = 0

    def _take(self) -> list:
        """Consume the entry returned by the immediately preceding _peek."""
        entry, bucket, pos, from_heap = self._found
        self._found = None
        if from_heap:
            heappop(self._heap)
            self._heap_live -= 1
            return entry
        # Consumed wheel entries stay in their bucket as tombstones; the
        # bucket is reclaimed lazily by `_peek` once the scan next lands
        # on it and finds nothing live.  Eager clearing would be wrong:
        # a bucket can hold a *live* entry for a later wheel rotation
        # (time = drained-cycle + k * WHEEL_SIZE, scheduled after a
        # ``run(until=...)`` clock jump) alongside the dead ones.
        self._drain_time = entry[0]
        self._drain_pos = pos + 1
        self._wheel_live -= 1
        return entry

    def _pop_next(self, limit: int | None = None) -> list | None:
        """Consume and return the earliest live entry, or None.

        The one-call hot path behind :meth:`run` and :meth:`step`: same
        selection rule as :meth:`_peek` + :meth:`_take` (keep the scans
        in lockstep!) but with no peek cache and the all-dead-bucket
        reclaim inlined.  With ``limit``, an entry due after ``limit``
        is left unconsumed and None is returned.
        """
        heap = self._heap
        while heap and heap[0][2] is None:
            e = heappop(heap)
            if e[5] & _F_RECYCLABLE:  # pragma: no cover - defensive only
                self._free.append(e)
        wheel_entry = None
        if self._wheel_live:
            now = self.now
            mask = self._wheel_mask
            wheel = self._wheel
            # Fast path: many events fire per cycle (one per active core),
            # so the bucket being drained is very often the current
            # cycle's.  Inserts never land before ``now``, so with an
            # empty heap the next live entry at/after ``_drain_pos`` IS
            # the global minimum — no bitmap scan, no heap tie-break.
            if not heap and self._drain_time == now:
                bucket = wheel[now & mask]
                pos = self._drain_pos
                n = len(bucket)
                while pos < n:
                    e = bucket[pos]
                    if e[2] is not None:
                        if limit is not None and now > limit:
                            return None
                        self._drain_pos = pos + 1
                        self._wheel_live -= 1
                        return e
                    pos += 1
            while True:
                occ = self._occ
                if occ == 0:
                    break
                base = now & mask
                high = occ >> base
                if high:
                    t = now + ((high & -high).bit_length() - 1)
                else:
                    t = now + self._wsize - base + ((occ & -occ).bit_length() - 1)
                idx = t & mask
                bucket = wheel[idx]
                drain_time = self._drain_time
                pos = self._drain_pos if t == drain_time else 0
                n = len(bucket)
                while pos < n:
                    e = bucket[pos]
                    if e[2] is not None:
                        break
                    pos += 1
                else:
                    # Nothing live: reclaim the bucket (see
                    # _reclaim_bucket) and look again.
                    dead = 0
                    free = self._free
                    for e in bucket:
                        if e[5] & _F_RECYCLABLE:
                            free.append(e)
                        else:
                            dead += 1
                    if dead and self._wheel_dead:
                        self._wheel_dead = max(0, self._wheel_dead - dead)
                    bucket.clear()
                    self._occ = occ & ~(1 << idx)
                    if idx == (drain_time & mask):
                        self._drain_time = -1
                        self._drain_pos = 0
                    continue
                wheel_entry = e
                break
        if wheel_entry is None:
            if heap:
                head = heap[0]
                if limit is not None and head[0] > limit:
                    return None
                heappop(heap)
                self._heap_live -= 1
                return head
            return None
        if heap:
            head = heap[0]
            ht = head[0]
            if ht < t or (ht == t and head[1] < wheel_entry[1]):
                if limit is not None and ht > limit:
                    return None
                heappop(heap)
                self._heap_live -= 1
                return head
        if limit is not None and t > limit:
            return None
        self._drain_time = t
        self._drain_pos = pos + 1
        self._wheel_live -= 1
        return wheel_entry

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event; return False when the queue is empty.

        An exception escaping the callback propagates unchanged (same
        type, same traceback) but is annotated — PEP 678 ``add_note`` —
        with the event's firing cycle, sequence number, and the cycle at
        which it was scheduled, so a protocol bug deep in a callback can
        be attributed to its scheduling site.
        """
        entry = self._pop_next()
        if entry is None:
            return False
        self.now = entry[0]
        callback = entry[2]
        arg = entry[3]
        entry[2] = None
        entry[3] = None
        try:
            if arg is _NO_ARG:
                callback()
            else:
                callback(arg)
        except Exception as exc:
            exc.add_note(
                f"[sim] while firing event seq={entry[1]} at cycle "
                f"{entry[0]} (scheduled at cycle {entry[4]})"
            )
            raise
        if entry[5] == (_F_RECYCLABLE | _F_IN_HEAP):
            self._free.append(entry)
        return True

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains (or limits hit); return event count.

        ``until`` stops the simulation once the next event lies beyond that
        cycle — events scheduled exactly *at* ``until`` still fire — and then
        advances ``now`` to ``until`` (i.e. to ``min(until, next-event
        time)``), so callers interleaving ``run(until=t)`` with
        ``schedule_at`` cannot accidentally schedule before ``t``; a
        ``schedule_at(t - k)`` afterwards raises like any other
        in-the-past schedule.  A stale ``until`` (``until < now``) fires
        nothing and leaves the clock alone.  ``max_events`` bounds the
        number of fired events (a safety net against livelocked workloads)
        and raises without touching the clock.

        With :attr:`epoch_mode` on (the default) the walk is delegated to
        :meth:`_run_epoch`, which batches whole uncontended cycles;
        firing order, limit semantics and the returned count are
        identical either way.
        """
        if self.epoch_mode:
            return self._run_epoch(until, max_events)
        fired = 0
        watchdog = self.watchdog
        if watchdog is not None:
            check_interval = watchdog.check_interval
            if check_interval < 1:
                raise ValueError(
                    f"watchdog check_interval must be >= 1, got {check_interval!r}"
                )
            countdown = check_interval
        free = self._free
        pop_next = self._pop_next
        if max_events is None and watchdog is None:
            # Specialized loop for the common no-budget, no-watchdog run:
            # drops the two per-event limit tests and inlines _pop_next's
            # same-cycle fast path (see there for why it is safe), saving
            # a Python call for the majority of events.
            wheel = self._wheel
            mask = self._wheel_mask
            while True:
                entry = None
                now = self.now
                if (
                    self._drain_time == now
                    and not self._heap
                    and (until is None or now <= until)
                ):
                    bucket = wheel[now & mask]
                    pos = self._drain_pos
                    n = len(bucket)
                    while pos < n:
                        e = bucket[pos]
                        if e[2] is not None:
                            entry = e
                            self._drain_pos = pos + 1
                            self._wheel_live -= 1
                            break
                        pos += 1
                if entry is None:
                    entry = pop_next(until)
                    if entry is None:
                        break
                    self.now = entry[0]
                callback = entry[2]
                arg = entry[3]
                entry[2] = None
                entry[3] = None
                try:
                    if arg is _NO_ARG:
                        callback()
                    else:
                        callback(arg)
                except Exception as exc:
                    exc.add_note(
                        f"[sim] while firing event seq={entry[1]} at cycle "
                        f"{entry[0]} (scheduled at cycle {entry[4]})"
                    )
                    raise
                if entry[5] == (_F_RECYCLABLE | _F_IN_HEAP):
                    free.append(entry)
                fired += 1
            if until is not None and until > self.now:
                self.now = until
            return fired
        while True:
            if max_events is not None and fired >= max_events:
                # Only a *fireable* next event trips the budget (an empty
                # queue, or one whose head lies beyond ``until``, ends the
                # run normally) — and it stays unconsumed, so peek here.
                head = self._peek()
                self._found = None
                if head is None or (until is not None and head[0] > until):
                    break
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events} at cycle {self.now}"
                )
            entry = pop_next(until)
            if entry is None:
                break
            self.now = entry[0]
            callback = entry[2]
            arg = entry[3]
            entry[2] = None
            entry[3] = None
            try:
                if arg is _NO_ARG:
                    callback()
                else:
                    callback(arg)
            except Exception as exc:
                exc.add_note(
                    f"[sim] while firing event seq={entry[1]} at cycle "
                    f"{entry[0]} (scheduled at cycle {entry[4]})"
                )
                raise
            if entry[5] == (_F_RECYCLABLE | _F_IN_HEAP):
                free.append(entry)
            fired += 1
            if watchdog is not None:
                countdown -= 1
                if countdown == 0:
                    watchdog.check()
                    countdown = check_interval
        if until is not None and until > self.now:
            self.now = until
        return fired

    def _run_epoch(self, until: int | None, max_events: int | None) -> int:
        """Epoch run loop: batch-advance uncontended stretches of the queue.

        One *epoch* is the drain of a single occupied wheel cycle whose
        events are provably the global frontier — no overflow-heap event
        can interleave.  The proof rests on two structural invariants:

        * every live wheel entry lies in ``[now, now + WHEEL_SIZE)``, so
          a bucket holds live entries of exactly one cycle and the next
          occupied bucket pins the next event time ``t``;
        * heap entries at a time ``t`` were necessarily scheduled while
          ``t - now >= WHEEL_SIZE`` — i.e. strictly before any wheel
          entry at ``t`` was scheduled — so their seqs are all smaller,
          and anything pushed *during* the drain lands at
          ``>= t + WHEEL_SIZE``.  Once the heap head is past ``t`` the
          whole cycle belongs to the wheel.

        Events therefore fire in exactly the canonical (cycle, seq)
        order, but without re-entering :meth:`_pop_next` (bitmap scan,
        heap tie-break, clock store) per event: the cycle is drained
        inline.  ``self._drain_pos`` and the bucket length are re-read
        after every callback — a cancel inside a callback can trigger
        :meth:`_compact_wheel`, which rewrites the bucket in place and
        resets the drain cursor.

        When the frontier is *not* an uncontended wheel cycle the loop
        falls back to a single :meth:`_pop_next` step and records the
        cause: ``heap-due`` (an overflow event — backoff expiry,
        watchdog horizon — interleaves the frontier) or ``heap-only``
        (nothing live in the wheel at all; also the steady state of
        :class:`ReferenceHeapSimulator`, which routes everything to the
        heap and thereby keeps exercising the reference path even with
        epoch mode on).

        Semantics (``until`` clamp, ``max_events`` raise-only-when-a-
        fireable-event-remains, watchdog polling every
        ``check_interval`` fired events) match :meth:`run`'s general
        loop exactly.
        """
        fired = 0
        batched = 0
        epochs = 0
        watchdog = self.watchdog
        check_interval = countdown = 0
        if watchdog is not None:
            check_interval = watchdog.check_interval
            if check_interval < 1:
                raise ValueError(
                    f"watchdog check_interval must be >= 1, got {check_interval!r}"
                )
            countdown = check_interval
        free = self._free
        heap = self._heap
        wheel = self._wheel
        mask = self._wheel_mask
        pop_next = self._pop_next
        fallbacks = self._epoch_fallbacks
        try:
            while True:
                while heap and heap[0][2] is None:
                    e = heappop(heap)
                    if e[5] & _F_RECYCLABLE:  # pragma: no cover - defensive
                        free.append(e)
                # Locate the next occupied wheel cycle t and the position
                # of its first live entry (same scan as _peek).
                t = -1
                bucket = None
                pos = 0
                if self._wheel_live:
                    now = self.now
                    while True:
                        occ = self._occ
                        if occ == 0:
                            break
                        base = now & mask
                        high = occ >> base
                        if high:
                            cand = now + ((high & -high).bit_length() - 1)
                        else:
                            cand = (
                                now + self._wsize - base
                                + ((occ & -occ).bit_length() - 1)
                            )
                        idx = cand & mask
                        bucket = wheel[idx]
                        pos = self._drain_pos if cand == self._drain_time else 0
                        n = len(bucket)
                        while pos < n:
                            if bucket[pos][2] is not None:
                                break
                            pos += 1
                        else:
                            self._reclaim_bucket(idx, bucket)
                            continue
                        t = cand
                        break
                use_heap = False
                if t < 0:
                    if not heap:
                        break
                    use_heap = True
                elif heap:
                    head = heap[0]
                    ht = head[0]
                    if ht < t or (ht == t and head[1] < bucket[pos][1]):
                        use_heap = True
                if use_heap:
                    # Cross-epoch event: fall back to one reference step.
                    if until is not None and heap[0][0] > until:
                        break
                    if max_events is not None and fired >= max_events:
                        raise RuntimeError(
                            f"simulation exceeded max_events={max_events}"
                            f" at cycle {self.now}"
                        )
                    cause = "heap-only" if t < 0 else "heap-due"
                    fallbacks[cause] = fallbacks.get(cause, 0) + 1
                    entry = pop_next(until)
                    if entry is None:  # pragma: no cover - guarded above
                        break
                    self.now = entry[0]
                    callback = entry[2]
                    arg = entry[3]
                    entry[2] = None
                    entry[3] = None
                    try:
                        if arg is _NO_ARG:
                            callback()
                        else:
                            callback(arg)
                    except Exception as exc:
                        exc.add_note(
                            f"[sim] while firing event seq={entry[1]} at cycle "
                            f"{entry[0]} (scheduled at cycle {entry[4]})"
                        )
                        raise
                    if entry[5] == (_F_RECYCLABLE | _F_IN_HEAP):
                        free.append(entry)
                    fired += 1
                    if watchdog is not None:
                        countdown -= 1
                        if countdown == 0:
                            watchdog.check()
                            countdown = check_interval
                    continue
                if until is not None and t > until:
                    break
                if max_events is not None and fired >= max_events:
                    # A fireable entry at t remains; raise before the
                    # clock moves (max_events never touches the clock).
                    raise RuntimeError(
                        f"simulation exceeded max_events={max_events}"
                        f" at cycle {self.now}"
                    )
                # Batched drain of cycle t.  No heap event can interleave
                # (see the docstring), so per-event work is just the
                # dead-entry skip and the callback itself.
                epochs += 1
                self.now = t
                self._drain_time = t
                self._drain_pos = pos
                while True:
                    pos = self._drain_pos
                    n = len(bucket)
                    while pos < n:
                        e = bucket[pos]
                        if e[2] is not None:
                            break
                        pos += 1
                    else:
                        self._drain_pos = pos
                        break
                    if max_events is not None and fired >= max_events:
                        self._drain_pos = pos
                        raise RuntimeError(
                            f"simulation exceeded max_events={max_events}"
                            f" at cycle {self.now}"
                        )
                    self._drain_pos = pos + 1
                    self._wheel_live -= 1
                    callback = e[2]
                    arg = e[3]
                    e[2] = None
                    e[3] = None
                    try:
                        if arg is _NO_ARG:
                            callback()
                        else:
                            callback(arg)
                    except Exception as exc:
                        exc.add_note(
                            f"[sim] while firing event seq={e[1]} at cycle "
                            f"{e[0]} (scheduled at cycle {e[4]})"
                        )
                        raise
                    fired += 1
                    batched += 1
                    if watchdog is not None:
                        countdown -= 1
                        if countdown == 0:
                            watchdog.check()
                            countdown = check_interval
        finally:
            self._epoch_epochs += epochs
            self._epoch_batched += batched
        if until is not None and until > self.now:
            self.now = until
        return fired

    @property
    def epoch_stats(self) -> dict:
        """Epoch-execution counters, accumulated across :meth:`run` calls.

        ``epochs`` — batched cycle drains entered; ``events_batched`` —
        events fired inside them (the remainder of the fired total went
        through the per-event fallback); ``spin_polls_elided`` — spin
        probes replaced by closed-form lease ticks (see
        :meth:`repro.protocols.base.CoherenceProtocol.spin_poll_lease`);
        ``fallbacks`` — cause → count of per-event fallback steps.
        """
        return {
            "epochs": self._epoch_epochs,
            "events_batched": self._epoch_batched,
            "spin_polls_elided": self._epoch_spin_elided,
            "fallbacks": dict(sorted(self._epoch_fallbacks.items())),
        }

    @property
    def pending_events(self) -> int:
        """Number of live (not fired, not cancelled) events — O(1)."""
        return self._wheel_live + self._heap_live

    def _retained_entries(self) -> int:
        """Entries physically held by the queue, dead tombstones included.

        Test/debug introspection: compaction keeps this from growing
        unboundedly under cancel storms.
        """
        return len(self._heap) + sum(len(b) for b in self._wheel)


class ReferenceHeapSimulator(Simulator):
    """Pure-heap scheduler with the pre-overhaul implementation shape.

    Routes every event to the overflow heap, bypassing the bucket wheel.
    The (time, seq) determinism contract makes it produce *exactly* the
    same firing order as the hybrid :class:`Simulator`; the golden-run
    and property tests exploit that to cross-check the wheel against a
    trivially correct reference.
    """

    def _insert(self, entry: list, time: int) -> None:
        entry[5] |= _F_IN_HEAP
        heappush(self._heap, entry)
        self._heap_live += 1

    def call_at(self, time: int, callback: Callable, arg=_NO_ARG) -> None:
        now = self.now
        if time < now:
            raise ValueError(f"cannot schedule in the past ({time} < {now})")
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = seq
            entry[2] = callback
            entry[3] = arg
            entry[4] = now
            entry[5] = _F_RECYCLABLE | _F_IN_HEAP
        else:
            entry = [time, seq, callback, arg, now, _F_RECYCLABLE | _F_IN_HEAP]
        heappush(self._heap, entry)
        self._heap_live += 1

    def call_after(self, delay: int, callback: Callable, arg=_NO_ARG) -> None:
        # The base class inlines its wheel insert here; route back through
        # the heap-only call_at.
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.call_at(self.now + delay, callback, arg)
