"""Discrete-event simulation engine.

All simulated activity is ordered through a single event queue keyed by
(cycle, sequence-number).  The sequence number makes the simulation fully
deterministic: two events scheduled for the same cycle fire in the order
they were scheduled.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by (time, seq) so that :class:`Simulator` can keep them
    in a heap; ``cancelled`` events are skipped when popped.
    ``scheduled_at`` records the cycle at which the event was created, so
    an exception escaping the callback can be attributed to its
    scheduling site.  ``owner`` is the scheduling :class:`Simulator`, so a
    cancel can maintain the simulator's live-event counter.
    """

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    scheduled_at: int = field(default=0, compare=False)
    owner: Optional["Simulator"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._event_cancelled()


class Simulator:
    """A minimal deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(10, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [10]
    """

    #: Compact the heap when it holds at least this many entries and
    #: cancelled entries outnumber live ones (see :meth:`_event_cancelled`).
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._live = 0  # non-cancelled events still in the heap
        self.now = 0
        #: Cycle of the most recent *architectural* progress.  Cores stamp
        #: this every time an operation retires; the liveness watchdog
        #: (:mod:`repro.sim.watchdog`) compares it against ``now`` to
        #: detect livelock (events firing, clock advancing, nothing
        #: retiring).
        self.progress_cycle = 0
        #: Optional :class:`~repro.sim.watchdog.Watchdog`; when set,
        #: :meth:`run` polls it every ``watchdog.check_interval`` events.
        self.watchdog = None
        #: Optional :class:`~repro.mc.controller.ScheduleController`.  When
        #: set, every :class:`~repro.cpu.core.Core` *gates* at each visible
        #: memory-operation boundary: instead of issuing the operation it
        #: parks a continuation with the controller and waits to be
        #: released.  The model checker uses this to serialize and choose
        #: the interleaving of visible operations; normal runs leave it
        #: None and pay one attribute test per operation.
        self.controller = None

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire at absolute cycle ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        event = Event(
            time=time, seq=self._seq, callback=callback, scheduled_at=self.now,
            owner=self,
        )
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def _event_cancelled(self) -> None:
        """Maintain the live counter on cancel; compact a mostly-dead heap.

        The exploration driver cancels heavily, so the heap is rebuilt
        from the survivors once cancelled entries outnumber live ones
        (amortized O(1) per cancel).
        """
        self._live -= 1
        if (
            len(self._queue) >= self.COMPACT_MIN_SIZE
            and self._live * 2 < len(self._queue)
        ):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)

    def schedule_after(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback)

    def step(self) -> bool:
        """Fire the next pending event; return False when the queue is empty.

        An exception escaping the callback propagates unchanged (same
        type, same traceback) but is annotated — PEP 678 ``add_note`` —
        with the event's firing cycle, sequence number, and the cycle at
        which it was scheduled, so a protocol bug deep in a callback can
        be attributed to its scheduling site.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._live -= 1
            self.now = event.time
            try:
                event.callback()
            except Exception as exc:
                exc.add_note(
                    f"[sim] while firing event seq={event.seq} at cycle "
                    f"{event.time} (scheduled at cycle {event.scheduled_at})"
                )
                raise
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains (or limits hit); return event count.

        ``until`` stops the simulation once the next event lies beyond that
        cycle — events scheduled exactly *at* ``until`` still fire — and then
        advances ``now`` to ``until`` (i.e. to ``min(until, next-event
        time)``), so callers interleaving ``run(until=t)`` with
        ``schedule_at`` cannot accidentally schedule before ``t``; a
        ``schedule_at(t - k)`` afterwards raises like any other
        in-the-past schedule.  A stale ``until`` (``until < now``) fires
        nothing and leaves the clock alone.  ``max_events`` bounds the
        number of fired events (a safety net against livelocked workloads)
        and raises without touching the clock.
        """
        fired = 0
        watchdog = self.watchdog
        check_interval = watchdog.check_interval if watchdog is not None else 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            if max_events is not None and fired >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events} at cycle {self.now}"
                )
            self.step()
            fired += 1
            if watchdog is not None and fired % check_interval == 0:
                watchdog.check()
        if until is not None and until > self.now:
            self.now = until
        return fired

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) scheduled events — O(1)."""
        return self._live
