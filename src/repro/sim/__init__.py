"""Event-driven simulation engine."""

from repro.sim.engine import Event, Simulator
from repro.sim.watchdog import HangError, SimulationStuck, Watchdog

__all__ = ["Event", "Simulator", "HangError", "SimulationStuck", "Watchdog"]
