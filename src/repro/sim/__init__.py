"""Event-driven simulation engine."""

from repro.sim.engine import Event, Simulator

__all__ = ["Event", "Simulator"]
