"""Liveness watchdog: turn silent hangs into structured diagnoses.

PR 1 fixed a MESI bug where a spin-waiter whose cached copy was evicted
slept forever — and the only symptom was a simulation that never ended.
The watchdog makes that failure mode loud.  It detects three conditions:

* **No global progress**: the simulated clock keeps advancing (events
  fire — spin probes, directory retries, backoff stalls) but no core has
  *retired* an operation for ``window`` cycles while unfinished cores
  exist.  This is the livelock shape: everyone busy, nobody moving.
* **Quiescence deadlock**: the event queue drained but some cores never
  finished their programs — a sleeping waiter was stranded with nothing
  left to wake it.
* **Cycle budget exceeded**: the clock passed an explicit ``max_cycles``
  bound (the CLI's ``--max-cycles`` guard against runaway runs).

All three raise :class:`HangError` carrying a full
:class:`~repro.harness.diagnostics.DiagnosticDump`: per-core blocked
operation and wait reason, the directory/registry state of every
contested line, pending transient state (busy directory windows,
in-flight registration chains, fault-injector deferrals), and the event
queue depth.  The renderer lives in :mod:`repro.harness.diagnostics`.

The watchdog is sampled: :meth:`Watchdog.check` runs every
``check_interval`` fired events (the :class:`~repro.sim.engine.Simulator`
run loop calls it), so at the default interval its overhead is a fraction
of a percent of the event-dispatch cost.
"""

from __future__ import annotations

from collections.abc import Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim <- harness)
    from repro.harness.diagnostics import DiagnosticDump

#: Cycles without any op retiring before the watchdog declares a livelock.
#: Generous: the largest legitimate retire-free stretch is one maximal
#: dummy-compute window plus a memory miss plus a saturated hardware
#: backoff, well under 100k cycles; 500k keeps headroom for app models.
DEFAULT_PROGRESS_WINDOW = 500_000

#: Fired events between watchdog checks (the default sampling rate).
DEFAULT_CHECK_INTERVAL = 256


class HangError(RuntimeError):
    """The simulation stopped making progress; carries a diagnostic dump.

    ``dump`` is the structured :class:`DiagnosticDump` (or None when no
    context was available); the rendered dump is appended to the message
    so an unhandled hang prints a full diagnosis, not just a one-liner.
    """

    def __init__(self, message: str, dump: DiagnosticDump | None = None):
        self.dump = dump
        if dump is not None:
            message = f"{message}\n{dump.render()}"
        super().__init__(message)


class SimulationStuck(HangError):
    """The event queue drained with unfinished cores (quiescence deadlock)."""


class Watchdog:
    """Progress monitor for one simulation run.

    ``sim`` is polled for the clock and the last-retire cycle (cores
    stamp ``sim.progress_cycle`` every time an operation retires);
    ``cores`` supply per-core blocked state; ``protocol`` supplies
    directory/registry detail for the dump.
    """

    def __init__(
        self,
        sim,
        cores: Sequence,
        protocol,
        *,
        window: int | None = DEFAULT_PROGRESS_WINDOW,
        max_cycles: int | None = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
    ) -> None:
        if check_interval < 1:
            raise ValueError(f"check_interval must be >= 1, got {check_interval}")
        if window is not None and window < 1:
            raise ValueError(f"progress window must be >= 1, got {window}")
        self.sim = sim
        self.cores = cores
        self.protocol = protocol
        self.window = window
        self.max_cycles = max_cycles
        self.check_interval = check_interval

    # -- detection -----------------------------------------------------------

    def blocked_cores(self) -> list:
        return [core for core in self.cores if not core.done]

    def check(self) -> None:
        """Periodic in-run check; raises :class:`HangError` on a hang."""
        sim = self.sim
        if self.max_cycles is not None and sim.now > self.max_cycles:
            raise HangError(
                f"simulation exceeded max_cycles={self.max_cycles} "
                f"(clock at {sim.now})",
                self._dump("max-cycles budget exceeded"),
            )
        if self.window is None:
            return
        stalled_for = sim.now - sim.progress_cycle
        if stalled_for > self.window and self.blocked_cores():
            raise HangError(
                f"no core retired an operation for {stalled_for} cycles "
                f"(window {self.window}) while blocked operations exist "
                f"— livelock",
                self._dump("no global progress"),
            )

    def check_quiescent(self) -> None:
        """End-of-run check; raises :class:`SimulationStuck` on a deadlock."""
        blocked = self.blocked_cores()
        if not blocked:
            return
        ids = [core.core_id for core in blocked]
        raise SimulationStuck(
            f"event queue drained with cores {ids} still blocked "
            f"(deadlock or missing wake-up) at cycle {self.sim.now}",
            self._dump("quiescence deadlock"),
        )

    # -- diagnostics ---------------------------------------------------------

    def _dump(self, reason: str) -> DiagnosticDump:
        # Imported lazily: the sim layer must stay importable without the
        # harness, and dumps are only built on the failure path.
        from repro.harness.diagnostics import build_dump

        return build_dump(self.sim, self.cores, self.protocol, reason)
