"""Name-based registry of every workload in the evaluation."""

from __future__ import annotations

from repro.workloads.base import KernelSpec, Workload
from repro.workloads.kernels_barrier import barrier_kernel_names, make_barrier_kernel
from repro.workloads.kernels_lock import LOCK_KERNELS
from repro.workloads.kernels_nonblocking import NONBLOCKING_KERNELS


def make_kernel(
    figure: str, name: str, spec: KernelSpec | None = None, **kwargs
) -> Workload:
    """Build one kernel by (figure, bar-name).

    ``figure`` is one of ``tatas``, ``array``, ``nonblocking``, ``barrier``
    (Figures 3-6 respectively); ``name`` is the bar label from the figure.
    Extra keyword arguments reach the kernel constructor (e.g.
    ``software_backoff``, ``reduced_checks``).
    """
    if figure in ("tatas", "array", "mcs"):
        # "mcs" is an extension family (list-based queuing locks), not a
        # paper figure; it reuses the Figure 3/4 kernel bodies.
        return LOCK_KERNELS[name](lock_type=figure, spec=spec, **kwargs)
    if figure == "nonblocking":
        return NONBLOCKING_KERNELS[name](spec=spec, **kwargs)
    if figure == "barrier":
        return make_barrier_kernel(name, spec=spec)
    raise ValueError(f"unknown kernel figure {figure!r}")


def kernel_names(figure: str) -> list[str]:
    """The bar labels of one kernel figure, in figure order."""
    if figure in ("tatas", "array", "mcs"):
        return list(LOCK_KERNELS)
    if figure == "nonblocking":
        return list(NONBLOCKING_KERNELS)
    if figure == "barrier":
        return barrier_kernel_names()
    raise ValueError(f"unknown kernel figure {figure!r}")


KERNEL_FIGURES = ("tatas", "array", "nonblocking", "barrier")


def all_kernel_ids() -> list[tuple[str, str]]:
    """All 24 (figure, name) kernel identifiers."""
    return [(fig, name) for fig in KERNEL_FIGURES for name in kernel_names(fig)]
