"""Workload abstractions and the synchronization-kernel driver.

A :class:`Workload` builds, for a given system configuration, a
:class:`WorkloadInstance`: a region allocator populated with the shared
data, initial memory values, and one thread program (generator) per core.

The kernel driver reproduces the paper's measurement methodology
(section 5.3.1): each core runs ``iterations`` iterations of the kernel
body with a uniformly random dummy-computation window between iterations
(charged to the *non-synch* component), and all cores meet in a tree
barrier at the end whose wait time is charged to the *barrier* component
(exposing load imbalance caused by synchronization contention).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from collections.abc import Generator, Iterable

from repro.config import SystemConfig
from repro.cpu.isa import Compute, PopBucket, PushBucket
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator
from repro.stats.timeparts import TimeComponent

#: The paper's dummy-computation windows between kernel iterations.
NON_SYNCH_RANGE_16 = (1400, 1800)
NON_SYNCH_RANGE_64 = (6200, 6600)
#: ... and the wider windows for the unbalanced barrier variants.
UNBALANCED_RANGE_16 = (400, 2800)
UNBALANCED_RANGE_64 = (1600, 11200)

#: Paper iteration counts: 100 for most kernels, 1000 for the FAI counter.
PAPER_ITERATIONS = 100
PAPER_ITERATIONS_FAI = 1000


def non_synch_range(config: SystemConfig, unbalanced: bool = False) -> tuple[int, int]:
    """The dummy-compute window for this system size (paper section 5.3.1)."""
    if unbalanced:
        return UNBALANCED_RANGE_16 if config.num_cores <= 16 else UNBALANCED_RANGE_64
    return NON_SYNCH_RANGE_16 if config.num_cores <= 16 else NON_SYNCH_RANGE_64


@dataclass
class WorkloadInstance:
    """Everything the runner needs to execute one workload."""

    name: str
    allocator: RegionAllocator
    programs: list[Generator]
    initial_values: dict[int, int] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)


class Workload(ABC):
    """A named, buildable workload."""

    name = "abstract"

    @abstractmethod
    def build(self, config: SystemConfig, *, seed: int = 0) -> WorkloadInstance:
        """Create the shared state and per-core programs for ``config``."""


@dataclass
class KernelSpec:
    """Parameters of one synchronization-kernel run.

    ``scale`` shrinks the paper's iteration counts proportionally so the
    full figure sweeps stay tractable in pure Python; benches record the
    scale they used.  ``unbalanced`` selects the wider dummy-compute window
    used for the unbalanced barrier variants.
    """

    iterations: int = PAPER_ITERATIONS
    scale: float = 1.0
    unbalanced: bool = False

    def scaled_iterations(self) -> int:
        return max(1, round(self.iterations * self.scale))


class KernelWorkload(Workload):
    """Base class for the 24 synchronization kernels.

    Subclasses implement :meth:`setup` (allocate shared structures, return
    initial memory values) and :meth:`body` (one kernel iteration for one
    thread).  The driver adds the dummy compute and the end barrier.
    """

    def __init__(self, spec: KernelSpec | None = None):
        self.spec = spec or KernelSpec()

    @abstractmethod
    def setup(self, config: SystemConfig, allocator: RegionAllocator) -> dict[int, int]:
        """Allocate shared state; return initial memory values (addr -> value)."""

    @abstractmethod
    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        """One iteration of the kernel for thread ``ctx`` (a generator)."""

    def build(self, config: SystemConfig, *, seed: int = 0) -> WorkloadInstance:
        import random

        from repro.mem.address import AddressMap
        from repro.synclib.barriers import TreeBarrier

        allocator = RegionAllocator(AddressMap(config))
        initial = dict(self.setup(config, allocator))
        end_barrier = TreeBarrier(allocator, config.num_cores, name="__end_barrier")
        window = non_synch_range(config, self.spec.unbalanced)
        iterations = self.spec.scaled_iterations()

        programs = []
        for core_id in range(config.num_cores):
            ctx = ThreadCtx(
                core_id=core_id,
                num_cores=config.num_cores,
                config=config,
                allocator=allocator,
                rng=random.Random((seed << 20) ^ (core_id * 2654435761 % 2**32)),
            )
            programs.append(self._program(ctx, iterations, window, end_barrier))
        return WorkloadInstance(
            name=self.name,
            allocator=allocator,
            programs=programs,
            initial_values=initial,
            meta={"iterations": iterations, "scale": self.spec.scale},
        )

    def _program(self, ctx: ThreadCtx, iterations, window, end_barrier):
        for iteration in range(iterations):
            yield Compute(ctx.uniform_cycles(*window), TimeComponent.NON_SYNCH)
            yield from self.body(ctx, iteration)
        yield PushBucket(TimeComponent.BARRIER_STALL)
        yield from end_barrier.wait(ctx, episode=1)
        yield PopBucket()
