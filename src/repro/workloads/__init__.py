"""Workloads: the paper's 24 synchronization kernels and 13 applications."""

from repro.workloads.base import KernelSpec, Workload, WorkloadInstance

__all__ = ["KernelSpec", "Workload", "WorkloadInstance"]
