"""Behavioural models of the 13 SPLASH-2 / PARSEC applications (Figure 7).

The paper's application results are driven by each benchmark's
synchronization pattern (barrier-only, barriers+locks, aggressive
non-blocking, pipeline) plus a handful of data-access traits it calls out
explicitly: LU's false sharing (word-granularity DeNovo is immune), the
conservative whole-region self-invalidation that hurts DeNovo on
fluidanimate, and canneal's CAS-heavy pointer swaps.  We encode those
traits as an :class:`AppProfile` per benchmark; the actual protocol
behaviour — misses, invalidations, registrations, traffic — emerges from
the simulator.  Absolute cycle counts are not meaningful (inputs are
synthetic); the MESI-vs-DeNovoSync ratios are the reproduced quantity.

Profiles are calibrated by *structure* (which pattern dominates), not by
fitting the paper's output numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.cpu.isa import Compute, Load, PopBucket, PushBucket, SelfInvalidate, Store, WaitLoad
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator
from repro.stats.timeparts import TimeComponent
from repro.synclib.barriers import TreeBarrier
from repro.synclib.tatas import TatasLock
from repro.workloads.base import Workload, WorkloadInstance


@dataclass(frozen=True)
class AppProfile:
    """Traits of one application's behavioural model.

    * ``phases`` / ``accesses_per_phase``: bulk structure of the parallel
      computation (each phase ends in a tree barrier).
    * ``private_frac`` / ``shared_read_frac`` / ``shared_write_frac``:
      data-access mix (fractions of each phase's accesses).
    * ``pad_private``: False gives adjacent threads' private data shared
      cache lines — LU-style false sharing.
    * ``locks`` / ``cs_per_phase`` / ``cs_accesses``: lock-protected
      critical sections per thread per phase.
    * ``selfinv_whole_shared``: True self-invalidates the *entire* shared
      region at every lock acquire (fluidanimate's conservative static
      regions) instead of just the lock's own small region.
    * ``cas_swaps_per_phase``: canneal-style lock-free CAS pointer swaps.
    * ``pipeline_stages``: >0 switches to the pipeline-parallel program
      shape (ferret/x264) with producer-consumer queues between stages.
    """

    name: str
    cores: int = 64
    phases: int = 4
    accesses_per_phase: int = 220
    private_words: int = 512
    shared_words: int = 4096
    private_frac: float = 0.70
    shared_read_frac: float = 0.24
    shared_write_frac: float = 0.06
    pad_private: bool = True
    locks: int = 0
    cs_per_phase: int = 0
    cs_accesses: int = 4
    selfinv_whole_shared: bool = False
    cas_swaps_per_phase: int = 0
    pipeline_stages: int = 0
    items_per_stage: int = 24
    compute_gap: int = 3
    #: When set, each thread's shared reads come from a window of this many
    #: words (high reuse).  Reuse is what conservative self-invalidation
    #: destroys, so fluidanimate-style apps set this together with
    #: ``selfinv_whole_shared``.
    shared_window: int | None = None
    #: The section 3 no-information fallback: self-invalidate *everything*
    #: (not just the protected regions) at every acquire and phase
    #: boundary.  Always correct, maximally conservative.
    flush_all_selfinv: bool = False
    #: Shared-access pattern: "uniform" random; "transpose" (FFT-style:
    #: write your block, read the others' blocks walk); "stencil"
    #: (ocean-style: your band plus the neighbouring halo rows).
    shared_pattern: str = "uniform"


class AppWorkload(Workload):
    """Executable behavioural model for one :class:`AppProfile`."""

    def __init__(self, profile: AppProfile, scale: float = 1.0):
        self.profile = profile
        self.scale = scale
        self.name = profile.name

    # -- construction ------------------------------------------------------

    def build(self, config: SystemConfig, *, seed: int = 0) -> WorkloadInstance:
        profile = self.profile
        allocator = RegionAllocator(
            __import__("repro.mem.address", fromlist=["AddressMap"]).AddressMap(config)
        )
        initial: dict[int, int] = {}
        n = config.num_cores

        # Shared data: one region, optionally sub-divided per lock.
        shared = allocator.alloc("app.shared", max(profile.shared_words, 64))
        shared_region = allocator.region("app.shared")

        # Private data: padded (own lines) or interleaved across threads so
        # neighbours share lines (false sharing under MESI).
        private_bases: list[int] = []
        if profile.pad_private:
            for t in range(n):
                base = allocator.alloc(
                    f"app.private{t}", profile.private_words, line_align=True
                ).base
                private_bases.append(base)
        else:
            words = profile.private_words
            block = allocator.alloc("app.private_interleaved", words * n)
            # Thread t owns words t, t+n, t+2n, ... — every line is shared
            # by `words_per_line` different threads.
            private_bases = [block.base + t for t in range(n)]

        locks = [
            TatasLock(allocator, f"app.lock{i}") for i in range(profile.locks)
        ]
        lock_regions = []
        lock_data = []
        for i in range(profile.locks):
            lock_regions.append(allocator.region(f"app.lockdata{i}"))
            lock_data.append(
                allocator.alloc(f"app.lockdata{i}", max(profile.cs_accesses, 4)).base
            )

        barrier = TreeBarrier(allocator, n, name="app.bar")
        end_barrier = TreeBarrier(allocator, n, name="app.endbar")

        pipeline = None
        if profile.pipeline_stages > 0:
            pipeline = _PipelinePlumbing(allocator, n, profile)

        shared_ctx = _AppShared(
            profile=profile,
            shared_base=shared.base,
            shared_words=max(profile.shared_words, 64),
            shared_region=shared_region,
            private_bases=private_bases,
            private_stride=1 if profile.pad_private else n,
            locks=locks,
            lock_regions=lock_regions,
            lock_data=lock_data,
            barrier=barrier,
            pipeline=pipeline,
        )

        programs = []
        for core_id in range(n):
            ctx = ThreadCtx(
                core_id=core_id,
                num_cores=n,
                config=config,
                allocator=allocator,
                rng=random.Random((seed << 18) ^ (0x9E3779B9 * (core_id + 1) % 2**32)),
            )
            programs.append(self._program(ctx, shared_ctx, end_barrier))
        return WorkloadInstance(
            name=profile.name,
            allocator=allocator,
            programs=programs,
            initial_values=initial,
            meta={"scale": self.scale, "profile": profile.name},
        )

    # -- the thread program --------------------------------------------------

    def _program(self, ctx: ThreadCtx, app: "_AppShared", end_barrier: TreeBarrier):
        profile = self.profile
        if profile.pipeline_stages > 0:
            yield from _pipeline_program(ctx, app, self.scale)
        else:
            accesses = max(1, round(profile.accesses_per_phase * self.scale))
            for phase in range(profile.phases):
                # Critical sections and CAS swaps are interleaved with the
                # data work, as in the real codes (a lock acquire in the
                # middle of the sweep is what makes conservative
                # self-invalidation costly: it wrecks the reuse of data
                # read so far).
                yield from _phase_work(ctx, app, accesses)
                yield from app.barrier.wait(ctx, episode=phase + 1)
                # Phase boundary: self-invalidate the shared region so the
                # next phase cannot see stale data (DeNovo's static scheme).
                if profile.flush_all_selfinv:
                    yield SelfInvalidate(flush_all=True)
                else:
                    yield SelfInvalidate((app.shared_region,))
        yield PushBucket(TimeComponent.BARRIER_STALL)
        yield from end_barrier.wait(ctx, episode=10_000_000)
        yield PopBucket()


@dataclass
class _AppShared:
    """Shared structures of one built app instance."""

    profile: AppProfile
    shared_base: int
    shared_words: int
    shared_region: object
    private_bases: list[int]
    private_stride: int
    locks: list[TatasLock]
    lock_regions: list
    lock_data: list[int]
    barrier: TreeBarrier
    pipeline: "_PipelinePlumbing" | None


def _phase_work(ctx: ThreadCtx, app: _AppShared, accesses: int):
    """One phase: the data loop with critical sections and CAS swaps
    interleaved at evenly spaced points."""
    profile = app.profile
    cs_every = (
        max(1, accesses // (profile.cs_per_phase + 1))
        if app.locks and profile.cs_per_phase
        else None
    )
    swap_every = (
        max(1, accesses // (profile.cas_swaps_per_phase + 1))
        if profile.cas_swaps_per_phase
        else None
    )
    base = app.private_bases[ctx.core_id]
    stride = app.private_stride
    private_idx = 0
    shared_idx = 0
    for i in range(accesses):
        if cs_every and i % cs_every == cs_every - 1:
            yield from _one_critical_section(ctx, app)
        if swap_every and i % swap_every == swap_every - 1:
            yield from _one_cas_swap(ctx, app)
        yield Compute(profile.compute_gap)
        roll = ctx.rng.random()
        if roll < profile.private_frac:
            addr = base + (private_idx % profile.private_words) * stride
            private_idx += 1
            if ctx.rng.random() < 0.4:
                yield Store(addr, i)
            else:
                yield Load(addr)
        elif roll < profile.private_frac + profile.shared_read_frac:
            yield Load(_shared_read_addr(ctx, app, shared_idx))
            shared_idx += 1
        else:
            yield Store(_shared_write_addr(ctx, app, i), i)


def _block_geometry(ctx: ThreadCtx, app: _AppShared) -> tuple[int, int]:
    """(block size, my block start) for block-partitioned shared data."""
    block = max(1, app.shared_words // ctx.num_cores)
    return block, (ctx.core_id * block) % app.shared_words


def _shared_read_addr(ctx: ThreadCtx, app: _AppShared, index: int) -> int:
    profile = app.profile
    if profile.shared_pattern == "transpose":
        # FFT all-to-all: walk the *other* threads' blocks in turn.
        block, _ = _block_geometry(ctx, app)
        other = (ctx.core_id + 1 + index // block) % ctx.num_cores
        offset = (other * block + index % block) % app.shared_words
        return app.shared_base + offset
    if profile.shared_pattern == "stencil":
        # Ocean nearest-neighbour: my band plus the adjacent halo rows.
        block, start = _block_geometry(ctx, app)
        halo = max(4, block // 8)
        span = block + 2 * halo
        offset = (start - halo + ctx.rng.randrange(span)) % app.shared_words
        return app.shared_base + offset
    if profile.shared_window:
        window = min(profile.shared_window, app.shared_words)
        start = (ctx.core_id * window) % max(1, app.shared_words - window)
        return app.shared_base + start + ctx.rng.randrange(window)
    return app.shared_base + ctx.rng.randrange(app.shared_words)


def _shared_write_addr(ctx: ThreadCtx, app: _AppShared, index: int) -> int:
    if app.profile.shared_pattern in ("transpose", "stencil"):
        # Owner-computes: writes land in the thread's own block.
        block, start = _block_geometry(ctx, app)
        return app.shared_base + start + index % block
    return app.shared_base + ctx.rng.randrange(app.shared_words)


def _one_critical_section(ctx: ThreadCtx, app: _AppShared):
    """One lock-protected update (barriers+locks apps)."""
    profile = app.profile
    which = ctx.rng.randrange(len(app.locks))
    lock = app.locks[which]
    token = yield from lock.acquire(ctx)
    if profile.flush_all_selfinv:
        yield SelfInvalidate(flush_all=True)
    elif profile.selfinv_whole_shared:
        # Conservative static regions: invalidate everything writeable
        # under any lock (fluidanimate's problem under DeNovo).
        yield SelfInvalidate((app.shared_region, app.lock_regions[which]))
    else:
        yield SelfInvalidate((app.lock_regions[which],))
    data = app.lock_data[which]
    for k in range(profile.cs_accesses):
        value = yield Load(data + k)
        yield Store(data + k, value + 1)
    yield from lock.release(token)


def _one_cas_swap(ctx: ThreadCtx, app: _AppShared):
    """One canneal-style lock-free element swap via CAS loops."""
    from repro.cpu.isa import Cas

    a = app.shared_base + ctx.rng.randrange(min(64, app.shared_words))
    b = app.shared_base + ctx.rng.randrange(min(64, app.shared_words))
    for addr in (a, b):
        attempt = 0
        while True:
            old = yield Load(addr, sync=True)
            got = yield Cas(addr, old, (old + ctx.core_id + 1) % 65536)
            if got == old:
                break
            attempt += 1
            yield Compute(min(128 << min(attempt, 4), 2048))


class _PipelinePlumbing:
    """Producer-consumer mailboxes forming a pipeline (ferret/x264).

    Threads are assigned round-robin to ``pipeline_stages`` stages; each
    adjacent pair (t, t+1) communicates through a single-slot mailbox: a
    payload line (data) plus a sequence flag (sync).  The producer writes
    the payload, then publishes the sequence number with a release store;
    the consumer spins on the flag, self-invalidates the payload region,
    and consumes.
    """

    PAYLOAD_WORDS = 8

    def __init__(self, allocator: RegionAllocator, nthreads: int, profile: AppProfile):
        self.nthreads = nthreads
        self.flags = [
            allocator.alloc(f"pipe.flag{t}", 1, line_align=True).base
            for t in range(nthreads)
        ]
        self.acks = [
            allocator.alloc(f"pipe.ack{t}", 1, line_align=True).base
            for t in range(nthreads)
        ]
        self.payload_region = allocator.region("pipe.payload")
        self.payloads = [
            allocator.alloc("pipe.payload", self.PAYLOAD_WORDS, line_align=True).base
            for _ in range(nthreads)
        ]


def _pipeline_program(ctx: ThreadCtx, app: _AppShared, scale: float):
    """One pipeline thread: consume from the left, work, produce right.

    Thread 0 sources items; the last thread sinks them.  Flow control is a
    one-deep mailbox per link with an ack flag back to the producer.
    """
    profile = app.profile
    pipe = app.pipeline
    assert pipe is not None
    items = max(1, round(profile.items_per_stage * scale))
    me = ctx.core_id
    left = me - 1
    work = max(1, round(profile.accesses_per_phase * scale / 8))
    private = app.private_bases[me]

    for seq in range(1, items + 1):
        if left >= 0:
            # Consume: wait for the item (the successful probe is the
            # acquire), self-invalidate, read the payload.
            yield WaitLoad(
                pipe.flags[left], lambda v, s=seq: v >= s,
                sync=True, acquire=True,
            )
            yield SelfInvalidate((pipe.payload_region,))
            for w in range(pipe.PAYLOAD_WORDS):
                yield Load(pipe.payloads[left] + w)
        # Stage work on private data.
        for i in range(work):
            yield Compute(profile.compute_gap)
            addr = private + (seq * work + i) % profile.private_words
            if i % 3 == 0:
                yield Store(addr, i)
            else:
                yield Load(addr)
        if me < ctx.num_cores - 1:
            # Flow control: wait for the consumer to drain the previous
            # item (acquire: the producer re-writes the payload words the
            # consumer just read, so the ack must order those reads).
            if seq > 1:
                yield WaitLoad(
                    pipe.acks[me], lambda v, s=seq: v >= s - 1,
                    sync=True, acquire=True,
                )
            for w in range(pipe.PAYLOAD_WORDS):
                yield Store(pipe.payloads[me] + w, seq + w)
            yield Store(pipe.flags[me], seq, sync=True, release=True)
        if left >= 0:
            yield Store(pipe.acks[left], seq, sync=True, release=True)


#: Figure 7's benchmark set.  ferret and x264 run on 16 cores (their
#: simulation inputs do not fill 64 cores concurrently); everything else
#: runs on 64.  Traits follow the paper's classification in section 7.2.
APP_PROFILES: dict[str, AppProfile] = {
    # -- barrier-only ---------------------------------------------------------
    "FFT": AppProfile(
        name="FFT", phases=6, private_frac=0.55, shared_read_frac=0.38,
        shared_write_frac=0.07, accesses_per_phase=240,
        shared_pattern="transpose",  # the all-to-all transpose phases
    ),
    "LU": AppProfile(
        name="LU", phases=6, private_frac=0.78, shared_read_frac=0.18,
        shared_write_frac=0.04, pad_private=False,  # the paper: false sharing
        accesses_per_phase=240,
    ),
    "blackscholes": AppProfile(
        name="blackscholes", phases=2, private_frac=0.92,
        shared_read_frac=0.07, shared_write_frac=0.01, accesses_per_phase=400,
    ),
    "swaptions": AppProfile(
        name="swaptions", phases=2, private_frac=0.94, shared_read_frac=0.05,
        shared_write_frac=0.01, accesses_per_phase=400,
    ),
    "radix": AppProfile(
        name="radix", phases=5, private_frac=0.60, shared_read_frac=0.15,
        shared_write_frac=0.25, accesses_per_phase=240,  # scatter writes
    ),
    # -- barriers + locks --------------------------------------------------------
    "bodytrack": AppProfile(
        name="bodytrack", phases=5, private_frac=0.75, shared_read_frac=0.20,
        shared_write_frac=0.05, locks=8, cs_per_phase=3, cs_accesses=4,
        accesses_per_phase=220,
    ),
    "barnes": AppProfile(
        name="barnes", phases=4, private_frac=0.55, shared_read_frac=0.35,
        shared_write_frac=0.10, locks=32, cs_per_phase=6, cs_accesses=4,
        accesses_per_phase=220,
    ),
    "water": AppProfile(
        name="water", phases=5, private_frac=0.80, shared_read_frac=0.14,
        shared_write_frac=0.06, locks=16, cs_per_phase=4, cs_accesses=3,
        accesses_per_phase=220,
    ),
    "ocean": AppProfile(
        name="ocean", phases=8, private_frac=0.62, shared_read_frac=0.32,
        shared_write_frac=0.06, locks=2, cs_per_phase=1, cs_accesses=2,
        accesses_per_phase=200, shared_pattern="stencil",
    ),
    "fluidanimate": AppProfile(
        name="fluidanimate", phases=5, private_frac=0.55,
        shared_read_frac=0.39, shared_write_frac=0.06,
        locks=32, cs_per_phase=8, cs_accesses=3,
        selfinv_whole_shared=True,  # conservative static self-invalidation
        shared_window=96,  # neighbouring-cell reuse that the selfinv wrecks
        accesses_per_phase=200,
    ),
    # -- aggressive non-blocking ------------------------------------------------
    "canneal": AppProfile(
        name="canneal", phases=4, private_frac=0.55, shared_read_frac=0.30,
        shared_write_frac=0.15, cas_swaps_per_phase=6, accesses_per_phase=200,
    ),
    # -- pipeline parallelism ------------------------------------------------------
    "ferret": AppProfile(
        name="ferret", cores=16, pipeline_stages=6, items_per_stage=30,
        accesses_per_phase=240, private_words=512,
    ),
    "x264": AppProfile(
        name="x264", cores=16, pipeline_stages=8, items_per_stage=30,
        accesses_per_phase=320, private_words=768,
    ),
}

APP_NAMES = list(APP_PROFILES)


def make_app(name: str, scale: float = 1.0) -> AppWorkload:
    """Build the named Figure 7 application model."""
    try:
        profile = APP_PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown app {name!r}; expected one of {APP_NAMES}") from None
    return AppWorkload(profile, scale=scale)


def app_core_count(name: str) -> int:
    """The paper's core count for this app (16 for ferret/x264, else 64)."""
    return APP_PROFILES[name].cores
