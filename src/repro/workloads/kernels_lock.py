"""Lock-based synchronization kernels (paper Figures 3 and 4).

Six kernels adapted from Michael & Scott 1998 — single-lock queue,
double-lock queue, stack, heap, counter, plus the paper's own ``large CS``
kernel with a fixed-length critical section — each built with either
TATAS locks (Figure 3) or Anderson array locks (Figure 4).

Per the paper (section 5.3.1), each iteration performs one insertion and
one retrieval (one increment for the counter), with a random dummy
computation between iterations, and no software backoff for the
lock-based kernels.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.config import SystemConfig
from repro.cpu.isa import Load, SelfInvalidate, Store
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator
from repro.synclib.arraylock import ArrayLock
from repro.synclib.counters import LockedCounter
from repro.synclib.locked_structures import (
    DoubleLockQueue,
    LockedHeap,
    LockedStack,
    SingleLockQueue,
)
from repro.synclib.mcslock import McsLock
from repro.synclib.tatas import TatasLock
from repro.workloads.base import KernelSpec, KernelWorkload

#: ``tatas`` and ``array`` are the paper's Figures 3 and 4; ``mcs`` is an
#: extension (the list-based queuing lock from the same lineage).
LOCK_TYPES = ("tatas", "array", "mcs")

#: Words touched (one load + one store each) inside the large-CS kernel's
#: fixed-length critical section.
LARGE_CS_WORDS = 24


def make_lock(
    lock_type: str,
    allocator: RegionAllocator,
    nthreads: int,
    name: str,
    software_backoff: bool = False,
):
    """Build a TATAS or array lock; returns (lock, initial_values)."""
    if lock_type == "tatas":
        return TatasLock(allocator, name, software_backoff=software_backoff), {}
    if lock_type == "array":
        lock = ArrayLock(allocator, nslots=nthreads, name=name)
        return lock, lock.initial_values()
    if lock_type == "mcs":
        return McsLock(allocator, nthreads, name=name), {}
    raise ValueError(f"unknown lock type {lock_type!r}; expected {LOCK_TYPES}")


class LockKernel(KernelWorkload):
    """Shared scaffolding for the lock-based kernels."""

    base_name = "abstract"

    def __init__(
        self,
        lock_type: str = "tatas",
        spec: KernelSpec | None = None,
        software_backoff: bool = False,
    ):
        super().__init__(spec)
        if lock_type not in LOCK_TYPES:
            raise ValueError(f"unknown lock type {lock_type!r}")
        self.lock_type = lock_type
        self.software_backoff = software_backoff
        self.name = f"{self.base_name} ({lock_type})"


class SingleLockQueueKernel(LockKernel):
    base_name = "single Q"

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        lock, initial = make_lock(
            self.lock_type, allocator, config.num_cores, "slq.lock",
            self.software_backoff,
        )
        self.queue = SingleLockQueue(
            allocator, lock, capacity=2 * config.num_cores + 8
        )
        return initial

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        yield from self.queue.enqueue(ctx, iteration + 1)
        yield from self.queue.dequeue(ctx)


class DoubleLockQueueKernel(LockKernel):
    base_name = "double Q"

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        head_lock, init_h = make_lock(
            self.lock_type, allocator, config.num_cores, "dlq.hlock",
            self.software_backoff,
        )
        tail_lock, init_t = make_lock(
            self.lock_type, allocator, config.num_cores, "dlq.tlock",
            self.software_backoff,
        )
        self.queue = DoubleLockQueue(
            allocator,
            head_lock,
            tail_lock,
            nodes_per_thread=self.spec.scaled_iterations(),
            nthreads=config.num_cores,
        )
        initial = dict(init_h)
        initial.update(init_t)
        initial.update(self.queue.initial_values())
        return initial

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        yield from self.queue.enqueue(ctx, iteration + 1)
        yield from self.queue.dequeue(ctx)


class LockedStackKernel(LockKernel):
    base_name = "stack"

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        lock, initial = make_lock(
            self.lock_type, allocator, config.num_cores, "lstack.lock",
            self.software_backoff,
        )
        self.stack = LockedStack(allocator, lock, capacity=2 * config.num_cores + 8)
        return initial

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        yield from self.stack.push(ctx, iteration + 1)
        yield from self.stack.pop(ctx)


class LockedHeapKernel(LockKernel):
    base_name = "heap"

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        lock, initial = make_lock(
            self.lock_type, allocator, config.num_cores, "lheap.lock",
            self.software_backoff,
        )
        self.heap = LockedHeap(allocator, lock, capacity=2 * config.num_cores + 8)
        return initial

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        # Data-dependent key pattern exercises different sift paths.
        key = ctx.rng.randrange(1, 1 << 20)
        yield from self.heap.insert(ctx, key)
        yield from self.heap.extract_min(ctx)


class LockedCounterKernel(LockKernel):
    base_name = "counter"

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        lock, initial = make_lock(
            self.lock_type, allocator, config.num_cores, "lcounter.lock",
            self.software_backoff,
        )
        self.counter = LockedCounter(allocator, lock)
        return initial

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        yield from self.counter.increment(ctx)


class LargeCSKernel(LockKernel):
    """Fixed-length large critical section over a shared scratch array."""

    base_name = "large CS"

    def __init__(
        self,
        lock_type: str = "tatas",
        spec: KernelSpec | None = None,
        software_backoff: bool = False,
        cs_words: int = LARGE_CS_WORDS,
    ):
        super().__init__(lock_type, spec, software_backoff)
        self.cs_words = cs_words

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        lock, initial = make_lock(
            self.lock_type, allocator, config.num_cores, "largecs.lock",
            self.software_backoff,
        )
        self.lock = lock
        self.region = allocator.region("largecs.data")
        self.data = allocator.alloc("largecs.data", self.cs_words).base
        return initial

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        token = yield from self.lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        for i in range(self.cs_words):
            value = yield Load(self.data + i)
            yield Store(self.data + i, value + 1)
        yield from self.lock.release(token)


#: The Figure 3 / Figure 4 kernel set, in figure order.
LOCK_KERNELS = {
    "single Q": SingleLockQueueKernel,
    "double Q": DoubleLockQueueKernel,
    "stack": LockedStackKernel,
    "heap": LockedHeapKernel,
    "counter": LockedCounterKernel,
    "large CS": LargeCSKernel,
}
