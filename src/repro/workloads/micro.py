"""Coherence microbenchmarks (extension).

The standard protocol-characterization suite: each microbenchmark
isolates one sharing pattern so protocol behaviours can be read directly
off the counters.

* :class:`PingPong` — two cores alternately write one word: pure
  ownership-transfer latency.
* :class:`ReadOnlySharing` — all cores repeatedly read a shared block:
  writer-free steady state (everything should hit after warm-up).
* :class:`FalseSharingMicro` — each core hammers its own word of a
  *shared line*: MESI's line-granularity pathology, DeNovo's word-state
  immunity.
* :class:`ProducerConsumer` — SPSC flag + payload handoff chain.
* :class:`AllToAll` — phase-wise write-your-block / read-all-blocks, the
  FFT-transpose pattern.
"""

from __future__ import annotations

import random
from collections.abc import Generator

from repro.config import SystemConfig
from repro.cpu.isa import Compute, Load, SelfInvalidate, Store, WaitLoad
from repro.cpu.thread import ThreadCtx
from repro.mem.address import AddressMap
from repro.mem.regions import RegionAllocator
from repro.synclib.barriers import TreeBarrier
from repro.workloads.base import Workload, WorkloadInstance


class _MicroBase(Workload):
    """Shared build scaffolding: allocator, contexts, end barrier."""

    def __init__(self, rounds: int = 20):
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds

    def build(self, config: SystemConfig, *, seed: int = 0) -> WorkloadInstance:
        allocator = RegionAllocator(AddressMap(config))
        state = self.setup(config, allocator)
        end_barrier = TreeBarrier(allocator, config.num_cores, name="micro.end")
        programs = []
        for core_id in range(config.num_cores):
            ctx = ThreadCtx(
                core_id=core_id,
                num_cores=config.num_cores,
                config=config,
                allocator=allocator,
                rng=random.Random(seed * 1009 + core_id),
            )
            programs.append(self._wrap(ctx, state, end_barrier))
        return WorkloadInstance(
            name=self.name, allocator=allocator, programs=programs,
            initial_values=self.initial_values(state),
        )

    def _wrap(self, ctx, state, end_barrier):
        yield from self.body(ctx, state)
        yield from end_barrier.wait(ctx, episode=1)

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        raise NotImplementedError

    def initial_values(self, state) -> dict[int, int]:
        return {}

    def body(self, ctx: ThreadCtx, state) -> Generator:
        raise NotImplementedError


class PingPong(_MicroBase):
    """Cores 0 and 1 alternately increment one word via turn-taking."""

    name = "micro.pingpong"

    def setup(self, config, allocator):
        return {"word": allocator.alloc_sync("pp.word").base}

    def body(self, ctx, state):
        word = state["word"]
        if ctx.core_id > 1:
            return
        me = ctx.core_id
        for turn in range(self.rounds):
            expected = 2 * turn + me
            yield WaitLoad(word, lambda v, e=expected: v >= e, sync=True)
            yield Store(word, expected + 1, sync=True, release=True)


class ReadOnlySharing(_MicroBase):
    """Everyone repeatedly reads a shared block nobody writes."""

    name = "micro.readonly"

    BLOCK_WORDS = 64

    def setup(self, config, allocator):
        return {"block": allocator.alloc("ro.block", self.BLOCK_WORDS).base}

    def body(self, ctx, state):
        block = state["block"]
        for _round_no in range(self.rounds):
            for offset in range(self.BLOCK_WORDS):
                yield Load(block + offset)
            yield Compute(50)


class FalseSharingMicro(_MicroBase):
    """Each core read-modify-writes its own word of shared lines."""

    name = "micro.falsesharing"

    def setup(self, config, allocator):
        block = allocator.alloc("fs.block", config.num_cores)
        return {"base": block.base}

    def body(self, ctx, state):
        mine = state["base"] + ctx.core_id
        for _round_no in range(self.rounds):
            value = yield Load(mine)
            yield Store(mine, value + 1)
            yield Compute(20)


class ProducerConsumer(_MicroBase):
    """A chain of SPSC handoffs: core i feeds core i+1."""

    name = "micro.prodcons"

    PAYLOAD_WORDS = 4

    def setup(self, config, allocator):
        n = config.num_cores
        return {
            "flags": [allocator.alloc_sync(f"pc.flag{i}").base for i in range(n)],
            "region": allocator.region("pc.payload"),
            "payloads": [
                allocator.alloc("pc.payload", self.PAYLOAD_WORDS, line_align=True).base
                for _ in range(n)
            ],
        }

    def body(self, ctx, state):
        me, left = ctx.core_id, ctx.core_id - 1
        for seq in range(1, self.rounds + 1):
            if left >= 0:
                yield WaitLoad(
                    state["flags"][left], lambda v, s=seq: v >= s,
                    sync=True, acquire=True,
                )
                yield SelfInvalidate((state["region"],))
                for w in range(self.PAYLOAD_WORDS):
                    yield Load(state["payloads"][left] + w)
            if me < ctx.num_cores - 1:
                for w in range(self.PAYLOAD_WORDS):
                    yield Store(state["payloads"][me] + w, seq)
                yield Store(state["flags"][me], seq, sync=True, release=True)


class AllToAll(_MicroBase):
    """Write your block, barrier, read everyone's blocks (transpose)."""

    name = "micro.alltoall"

    BLOCK_WORDS = 16

    def setup(self, config, allocator):
        n = config.num_cores
        return {
            "region": allocator.region("a2a.blocks"),
            "blocks": [
                allocator.alloc("a2a.blocks", self.BLOCK_WORDS, line_align=True).base
                for _ in range(n)
            ],
            "barrier": TreeBarrier(allocator, n, name="a2a.bar"),
        }

    def body(self, ctx, state):
        mine = state["blocks"][ctx.core_id]
        for round_no in range(self.rounds):
            for w in range(self.BLOCK_WORDS):
                yield Store(mine + w, round_no * 100 + w)
            yield from state["barrier"].wait(ctx, episode=2 * round_no + 1)
            yield SelfInvalidate((state["region"],))
            for other in range(ctx.num_cores):
                for w in range(self.BLOCK_WORDS):
                    yield Load(state["blocks"][other] + w)
            yield from state["barrier"].wait(ctx, episode=2 * round_no + 2)


MICROBENCHES = {
    cls.name: cls
    for cls in (PingPong, ReadOnlySharing, FalseSharingMicro, ProducerConsumer, AllToAll)
}
