"""Non-blocking synchronization kernels (paper Figure 5).

Six kernels adapted from Michael & Scott 1998: Michael-Scott queue, PLJ
queue, Treiber stack, Herlihy stack, Herlihy heap, and a fetch-and-
increment counter.  Each iteration performs one insertion and one
retrieval (one increment for FAI); every kernel uses software exponential
backoff in [128, 2048) cycles after a failed attempt, per section 5.3.1.

The Herlihy kernels accept ``reduced_checks=True`` to build the modified
versions with fewer equality checks that section 7.1.3 evaluates.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.config import SystemConfig
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator
from repro.synclib.counters import FaiCounter
from repro.synclib.herlihy import HerlihyHeap, HerlihyStack
from repro.synclib.msqueue import MichaelScottQueue
from repro.synclib.pljqueue import PLJQueue
from repro.synclib.treiber import TreiberStack
from repro.workloads.base import (
    KernelSpec,
    KernelWorkload,
    PAPER_ITERATIONS_FAI,
)


class NonBlockingKernel(KernelWorkload):
    """Shared scaffolding for the non-blocking kernels."""

    base_name = "abstract"

    def __init__(
        self, spec: KernelSpec | None = None, software_backoff: bool = True
    ):
        super().__init__(spec)
        self.software_backoff = software_backoff
        self.name = self.base_name


class MSQueueKernel(NonBlockingKernel):
    base_name = "M-S queue"

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        self.queue = MichaelScottQueue(
            allocator,
            nodes_per_thread=self.spec.scaled_iterations(),
            nthreads=config.num_cores,
            software_backoff=self.software_backoff,
        )
        return self.queue.initial_values()

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        yield from self.queue.enqueue(ctx, iteration + 1)
        yield from self.queue.dequeue(ctx)


class PLJQueueKernel(NonBlockingKernel):
    base_name = "PLJ queue"

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        total_ops = config.num_cores * self.spec.scaled_iterations()
        self.queue = PLJQueue(
            allocator, total_ops=total_ops, software_backoff=self.software_backoff
        )
        return {}

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        yield from self.queue.enqueue(ctx, iteration + 1)
        yield from self.queue.dequeue(ctx)


class TreiberStackKernel(NonBlockingKernel):
    base_name = "Treiber stack"

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        self.stack = TreiberStack(
            allocator,
            nodes_per_thread=self.spec.scaled_iterations(),
            nthreads=config.num_cores,
            software_backoff=self.software_backoff,
        )
        return {}

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        yield from self.stack.push(ctx, iteration + 1)
        yield from self.stack.pop(ctx)


class HerlihyStackKernel(NonBlockingKernel):
    base_name = "Herlihy stack"

    def __init__(
        self,
        spec: KernelSpec | None = None,
        software_backoff: bool = True,
        reduced_checks: bool = True,
    ):
        super().__init__(spec, software_backoff)
        self.reduced_checks = reduced_checks

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        self.stack = HerlihyStack(
            allocator,
            capacity=2 * config.num_cores + 8,
            blocks_per_thread=2 * self.spec.scaled_iterations() + 1,
            nthreads=config.num_cores,
            reduced_checks=self.reduced_checks,
            software_backoff=self.software_backoff,
        )
        return self.stack.initial_values()

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        yield from self.stack.push(ctx, iteration + 1)
        yield from self.stack.pop(ctx)


class HerlihyHeapKernel(NonBlockingKernel):
    base_name = "Herlihy heap"

    def __init__(
        self,
        spec: KernelSpec | None = None,
        software_backoff: bool = True,
        reduced_checks: bool = True,
    ):
        super().__init__(spec, software_backoff)
        self.reduced_checks = reduced_checks

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        self.heap = HerlihyHeap(
            allocator,
            capacity=2 * config.num_cores + 8,
            blocks_per_thread=2 * self.spec.scaled_iterations() + 1,
            nthreads=config.num_cores,
            reduced_checks=self.reduced_checks,
            software_backoff=self.software_backoff,
        )
        return self.heap.initial_values()

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        key = ctx.rng.randrange(1, 1 << 20)
        yield from self.heap.insert(ctx, key)
        yield from self.heap.extract_min(ctx)


class FaiCounterKernel(NonBlockingKernel):
    """The FAI counter runs 1000 iterations in the paper (it is tiny)."""

    base_name = "FAI counter"

    def __init__(
        self, spec: KernelSpec | None = None, software_backoff: bool = True
    ):
        spec = spec or KernelSpec(iterations=PAPER_ITERATIONS_FAI)
        super().__init__(spec, software_backoff)

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        self.counter = FaiCounter(allocator)
        return {}

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        yield from self.counter.increment(ctx)


#: The Figure 5 kernel set, in figure order.
NONBLOCKING_KERNELS = {
    "M-S queue": MSQueueKernel,
    "PLJ queue": PLJQueueKernel,
    "Treiber stack": TreiberStackKernel,
    "Herlihy stack": HerlihyStackKernel,
    "Herlihy heap": HerlihyHeapKernel,
    "FAI counter": FaiCounterKernel,
}
