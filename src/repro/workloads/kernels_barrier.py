"""Barrier synchronization kernels (paper Figure 6).

Three barriers — static binary tree, static tree with fan-in 4 / fan-out
2 (``n-ary``), and a centralized sense-reversing barrier — each in a
load-balanced and an unbalanced variant.  Per section 5.3.1 each kernel
iteration executes two barrier instances around a dummy computation; the
unbalanced variants draw their dummy computation from a much wider window
([400, 2800) at 16 cores, [1600, 11200) at 64) to stress the barrier with
stragglers.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.config import SystemConfig
from repro.cpu.isa import Compute
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator
from repro.stats.timeparts import TimeComponent
from repro.synclib.barriers import CentralBarrier, TreeBarrier
from repro.workloads.base import KernelSpec, KernelWorkload, non_synch_range

BARRIER_TYPES = ("tree", "n-ary", "central")


class BarrierKernel(KernelWorkload):
    """Two barrier instances around dummy computation, per iteration."""

    def __init__(
        self,
        barrier_type: str = "tree",
        unbalanced: bool = False,
        spec: KernelSpec | None = None,
    ):
        spec = spec or KernelSpec()
        spec.unbalanced = unbalanced
        super().__init__(spec)
        if barrier_type not in BARRIER_TYPES:
            raise ValueError(
                f"unknown barrier type {barrier_type!r}; expected {BARRIER_TYPES}"
            )
        self.barrier_type = barrier_type
        self.name = f"{barrier_type} (UB)" if unbalanced else barrier_type

    def setup(self, config: SystemConfig, allocator: RegionAllocator):
        if self.barrier_type == "tree":
            self.barrier = TreeBarrier(
                allocator, config.num_cores, fan_in=2, fan_out=2, name="kbar"
            )
        elif self.barrier_type == "n-ary":
            self.barrier = TreeBarrier(
                allocator, config.num_cores, fan_in=4, fan_out=2, name="kbar"
            )
        else:
            self.barrier = CentralBarrier(allocator, config.num_cores, name="kbar")
        self._window = non_synch_range(config, self.spec.unbalanced)
        return {}

    def body(self, ctx: ThreadCtx, iteration: int) -> Iterable:
        yield from self.barrier.wait(ctx, episode=2 * iteration + 1)
        yield Compute(
            ctx.uniform_cycles(*self._window), TimeComponent.NON_SYNCH
        )
        yield from self.barrier.wait(ctx, episode=2 * iteration + 2)


def barrier_kernel_names() -> list[str]:
    """The six Figure 6 bars, in figure order."""
    names = list(BARRIER_TYPES)
    names.extend(f"{b} (UB)" for b in BARRIER_TYPES)
    return names


def make_barrier_kernel(name: str, spec: KernelSpec | None = None) -> BarrierKernel:
    unbalanced = name.endswith(" (UB)")
    barrier_type = name[: -len(" (UB)")] if unbalanced else name
    return BarrierKernel(barrier_type, unbalanced=unbalanced, spec=spec)
