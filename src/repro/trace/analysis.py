"""Trace analysis: the summaries a coherence architect looks at first."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.trace.events import AccessRecord


@dataclass
class TraceSummary:
    """Aggregate statistics over one access trace."""

    accesses: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    sync_accesses: int = 0
    avg_latency: float = 0.0
    avg_miss_latency: float = 0.0
    hot_words: list[tuple[int, int]] = field(default_factory=list)
    max_sharing_degree: int = 0
    read_shared_words: int = 0
    racy_unannotated_pairs: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def summarize(records: list[AccessRecord], top_n: int = 10) -> TraceSummary:
    """Compute a :class:`TraceSummary` over ``records``.

    ``hot_words`` are the ``top_n`` most-accessed addresses (with counts);
    ``max_sharing_degree`` is the largest number of distinct cores that
    touched any one word; ``read_shared_words`` counts words read by more
    than one core — the population DeNovoSync's read registration
    serializes.  ``racy_unannotated_pairs`` is the number of conflicting
    access pairs with no happens-before order where at least one side is
    unannotated (``sync=False``) — the DRF-contract violations the
    sanitizer's dynamic mode reports (see :mod:`repro.sanitize.dynamic`).
    """
    summary = TraceSummary()
    by_kind: Counter[str] = Counter()
    per_word: Counter[int] = Counter()
    sharers: dict[int, set[int]] = defaultdict(set)
    readers: dict[int, set[int]] = defaultdict(set)
    latency_total = 0
    miss_latency_total = 0

    memory_records = [r for r in records if r.kind in ("load", "store", "rmw")]
    for record in memory_records:
        by_kind[record.kind] += 1
        per_word[record.addr] += 1
        sharers[record.addr].add(record.core)
        if record.kind == "load":
            readers[record.addr].add(record.core)
        if record.sync:
            summary.sync_accesses += 1
        if record.hit:
            summary.hits += 1
        else:
            summary.misses += 1
            miss_latency_total += record.latency
        latency_total += record.latency

    summary.accesses = len(memory_records)
    summary.by_kind = dict(by_kind)
    summary.avg_latency = latency_total / summary.accesses if summary.accesses else 0.0
    summary.avg_miss_latency = (
        miss_latency_total / summary.misses if summary.misses else 0.0
    )
    summary.hot_words = per_word.most_common(top_n)
    summary.max_sharing_degree = max(
        (len(cores) for cores in sharers.values()), default=0
    )
    summary.read_shared_words = sum(
        1 for cores in readers.values() if len(cores) > 1
    )
    from repro.sanitize.dynamic import analyze_trace

    summary.racy_unannotated_pairs = analyze_trace(records).racy_unannotated_pairs
    return summary


def interleaving_histogram(records: list[AccessRecord], addr: int) -> dict[int, int]:
    """Per-core access counts to one address (who hammers the hot word)."""
    counts: Counter[int] = Counter()
    for record in records:
        if record.addr == addr and record.kind in ("load", "store", "rmw"):
            counts[record.core] += 1
    return dict(counts)
