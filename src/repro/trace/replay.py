"""Trace replay: drive a protocol from a recorded reference stream.

Classic trace-driven simulation: the recorded per-core access streams are
replayed in order, with the recorded inter-access gaps reproduced as
compute delays.  Synchronization *outcomes* are pinned to the recorded
execution — an RMW replays as an unconditional store of its recorded
result — because a trace cannot re-arbitrate races; what replay preserves
is the reference stream (addresses, kinds, sync flags, per-core order),
which is exactly what cache/coherence studies replay traces for.

The replayed timing is protocol-dependent (that is the point): replaying
a MESI-recorded trace under DeNovoSync shows how the same reference
stream fares without writer-initiated invalidations.
"""

from __future__ import annotations

from collections import defaultdict

from repro.config import SystemConfig
from repro.cpu.isa import Compute, Load, Store, Swap
from repro.mem.address import AddressMap
from repro.mem.regions import RegionAllocator
from repro.trace.events import AccessRecord
from repro.workloads.base import Workload, WorkloadInstance


class TraceReplayWorkload(Workload):
    """Replay a recorded trace as one program per originating core."""

    name = "trace-replay"

    def __init__(self, records: list[AccessRecord], compress_gaps: int = 10_000):
        """``compress_gaps`` caps any single inter-access think time, so
        stalls of the traced protocol do not get baked into the replay."""
        self.records = records
        self.compress_gaps = compress_gaps

    def build(self, config: SystemConfig, *, seed: int = 0) -> WorkloadInstance:
        per_core: dict[int, list[AccessRecord]] = defaultdict(list)
        max_addr = 0
        for record in self.records:
            if record.kind in ("load", "store", "rmw"):
                if record.core >= config.num_cores:
                    raise ValueError(
                        f"trace uses core {record.core}, config has "
                        f"{config.num_cores}"
                    )
                per_core[record.core].append(record)
                max_addr = max(max_addr, record.addr)

        allocator = RegionAllocator(AddressMap(config))
        if max_addr >= allocator.words_allocated:
            allocator.alloc("trace.space", max_addr - allocator.words_allocated + 1)

        programs = []
        for core_id in range(config.num_cores):
            programs.append(self._program(per_core.get(core_id, [])))
        return WorkloadInstance(
            name=self.name,
            allocator=allocator,
            programs=programs,
            meta={"replayed_records": sum(len(v) for v in per_core.values())},
        )

    def _program(self, records: list[AccessRecord]):
        previous_cycle = None
        for record in records:
            if previous_cycle is not None:
                gap = record.cycle - previous_cycle
                gap = max(0, min(gap, self.compress_gaps))
                # Subtract the access's own issue cycle; the replayed
                # protocol charges its own latency.
                if gap > 1:
                    yield Compute(gap - 1)
            previous_cycle = record.cycle
            if record.kind == "load":
                yield Load(record.addr, sync=record.sync, acquire=record.acquire)
            elif record.kind == "store":
                yield Store(
                    record.addr, record.value, sync=record.sync, release=record.release
                )
            else:  # rmw: pin the recorded outcome
                yield Swap(
                    record.addr, record.value, release=record.release,
                    acquire=record.acquire,
                )
