"""A protocol wrapper that records every access it forwards.

``TracingProtocol`` is a transparent decorator around any
:class:`~repro.protocols.base.CoherenceProtocol`: cores talk to it
exactly as they would to the wrapped protocol, and every load, store,
RMW and self-invalidation lands in the trace (directory retries are not
recorded — they are re-issues of the same access).
"""

from __future__ import annotations

from dataclasses import replace
from collections.abc import Callable

from repro.mem.regions import Region
from repro.protocols.base import Access, CoherenceProtocol
from repro.trace.events import AccessRecord


class TracingProtocol:
    """Record accesses while delegating everything to ``inner``."""

    def __init__(self, inner: CoherenceProtocol):
        self.inner = inner
        self.records: list[AccessRecord] = []

    # -- delegated attributes the cores/runner rely on ---------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def config(self):
        return self.inner.config

    @property
    def memory(self):
        return self.inner.memory

    @property
    def traffic(self):
        return self.inner.traffic

    @property
    def counters(self):
        return self.inner.counters

    @property
    def now(self) -> int:
        return self.inner.now

    @property
    def allocator(self):
        return self.inner.allocator

    def set_time(self, now: int) -> None:
        self.inner.set_time(now)

    def sync_read_backoff(self, core_id: int, addr: int, spinning: bool = False) -> int:
        return self.inner.sync_read_backoff(core_id, addr, spinning=spinning)

    def subscribe_line_change(self, core_id, addr, callback) -> bool:
        return self.inner.subscribe_line_change(core_id, addr, callback)

    def on_acquire(self, core_id: int, addr: int) -> None:
        self.inner.on_acquire(core_id, addr)
        # Cores call this right after the access that won the acquire (a
        # successful spin probe): stamp that record so replay preserves
        # the acquire point.  Failed probes of the same spin stay plain
        # loads — the acquire only happens once.
        for i in range(len(self.records) - 1, -1, -1):
            record = self.records[i]
            if record.core != core_id:
                continue
            if record.addr == addr and record.kind in ("load", "rmw"):
                if not record.acquire:
                    self.records[i] = replace(record, acquire=True)
            break

    def check_invariants(self) -> None:
        self.inner.check_invariants()

    def invariant_violations(self) -> list[str]:
        return self.inner.invariant_violations()

    def force_evict(self, core_id: int, line: int) -> bool:
        return self.inner.force_evict(core_id, line)

    def debug_resident_lines(self, core_id: int) -> list[int]:
        return self.inner.debug_resident_lines(core_id)

    def debug_addr_state(self, addr: int) -> str:
        return self.inner.debug_addr_state(addr)

    # -- recorded operations -------------------------------------------------

    def load(
        self,
        core_id: int,
        addr: int,
        sync: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        access = self.inner.load(
            core_id, addr, sync=sync, ticketed=ticketed, acquire=acquire
        )
        if not access.retry:
            self._record("load", core_id, addr, sync, False, access, acquire=acquire)
        return access

    def store(
        self,
        core_id: int,
        addr: int,
        value: int,
        sync: bool = False,
        release: bool = False,
        ticketed: bool = False,
    ) -> Access:
        access = self.inner.store(
            core_id, addr, value, sync=sync, release=release, ticketed=ticketed
        )
        if not access.retry:
            self._record("store", core_id, addr, sync, release, access, value=value)
        return access

    def rmw(
        self,
        core_id: int,
        addr: int,
        fn: Callable[[int], int | None],
        release: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        access = self.inner.rmw(
            core_id, addr, fn, release=release, ticketed=ticketed, acquire=acquire
        )
        if not access.retry:
            # Record the post-RMW value so replay can pin the outcome.
            self._record(
                "rmw", core_id, addr, True, release, access,
                value=self.inner.memory.read(addr), acquire=acquire,
            )
        return access

    def self_invalidate(
        self, core_id: int, regions: list[Region], flush_all: bool = False
    ) -> int:
        latency = self.inner.self_invalidate(core_id, regions, flush_all=flush_all)
        self.records.append(
            AccessRecord(
                cycle=self.inner.now,
                core=core_id,
                kind="selfinv",
                addr=-1 if flush_all else (regions[0].region_id if regions else -1),
                value=1 if flush_all else 0,
                latency=latency,
                regions=tuple(r.region_id for r in regions) if not flush_all else (),
            )
        )
        return latency

    def _record(
        self, kind, core_id, addr, sync, release, access: Access, value=None,
        acquire=False,
    ) -> None:
        self.records.append(
            AccessRecord(
                cycle=self.inner.now,
                core=core_id,
                kind=kind,
                addr=addr,
                sync=sync,
                release=release,
                acquire=acquire,
                value=access.value if value is None else value,
                latency=access.latency,
                hit=access.hit,
            )
        )
