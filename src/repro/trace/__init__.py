"""Memory-access tracing: record, analyze, and replay.

The recorder wraps a coherence protocol and logs every access with its
outcome; the analysis module computes the summaries a protocol architect
reaches for (miss rates by kind, hot words, sharing degrees); the replay
module turns a recorded trace back into a workload so reference streams
can be re-driven through a protocol (classic trace-driven simulation).
"""

from repro.trace.events import AccessRecord
from repro.trace.recorder import TracingProtocol
from repro.trace.analysis import TraceSummary, summarize
from repro.trace.replay import TraceReplayWorkload

__all__ = [
    "AccessRecord",
    "TraceReplayWorkload",
    "TraceSummary",
    "TracingProtocol",
    "summarize",
]
