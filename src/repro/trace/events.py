"""Trace records and their on-disk (JSONL) format."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class AccessRecord:
    """One memory access as observed at the protocol boundary.

    ``kind`` is one of ``load``, ``store``, ``rmw``, ``selfinv``.
    ``value`` is the loaded/old value (stores record the written value).
    ``latency`` and ``hit`` describe the outcome under the traced
    protocol; replay ignores them (the replayed protocol produces its
    own).
    """

    cycle: int
    core: int
    kind: str
    addr: int
    sync: bool = False
    release: bool = False
    value: int = 0
    latency: int = 0
    hit: bool = False

    def to_json(self) -> str:
        return json.dumps(asdict(self), separators=(",", ":"))

    @staticmethod
    def from_json(line: str) -> "AccessRecord":
        return AccessRecord(**json.loads(line))


def write_trace(records, path) -> int:
    """Write records to a JSONL file; returns the count written."""
    count = 0
    with open(path, "w") as fh:
        for record in records:
            fh.write(record.to_json())
            fh.write("\n")
            count += 1
    return count


def read_trace(path) -> list[AccessRecord]:
    """Read a JSONL trace file."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(AccessRecord.from_json(line))
    return records
