"""Trace records and their on-disk (JSONL) format.

Trace files start with a header line ``{"trace_format": N}`` so readers
can tell versions apart; records follow, one JSON object per line.
Version 2 added the ``acquire`` field; version 3 added ``regions`` so
self-invalidation records carry their full region list (version 2 kept
only the first region's id, which was lossy for multi-region
invalidations and too little for the sanitizer's completeness checker).
:meth:`AccessRecord.from_json` ignores unknown keys, so traces written
by newer code (with extra fields) stay readable by older readers and
vice versa.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields

#: Current on-disk trace format version.  History:
#: 1 — headerless JSONL (the original format; still readable);
#: 2 — header line + ``acquire`` field on records;
#: 3 — ``regions`` field (full region-id list on ``selfinv`` records).
TRACE_FORMAT_VERSION = 3


@dataclass(frozen=True)
class AccessRecord:
    """One memory access as observed at the protocol boundary.

    ``kind`` is one of ``load``, ``store``, ``rmw``, ``selfinv``.
    ``value`` is the loaded/old value (stores record the written value,
    RMWs the post-RMW value).  ``latency`` and ``hit`` describe the
    outcome under the traced protocol; replay ignores them (the replayed
    protocol produces its own).  ``acquire`` marks acquire semantics —
    under DeNovo an acquire drives self-invalidation, so replay must
    preserve it.

    For ``selfinv`` records, ``regions`` is the full tuple of
    self-invalidated region ids and ``value`` is 1 for a flush-all
    invalidation (0 otherwise); ``addr`` keeps the version-2 convention
    (first region id, or -1 for flush-all) for older readers.
    """

    cycle: int
    core: int
    kind: str
    addr: int
    sync: bool = False
    release: bool = False
    acquire: bool = False
    value: int = 0
    latency: int = 0
    hit: bool = False
    regions: tuple[int, ...] = ()

    @property
    def flush_all(self) -> bool:
        """True for a flush-all ``selfinv`` record."""
        return self.kind == "selfinv" and (self.value == 1 or self.addr == -1)

    def to_json(self) -> str:
        data = asdict(self)
        data["regions"] = list(self.regions)
        return json.dumps(data, separators=(",", ":"))

    @staticmethod
    def from_json(line: str) -> "AccessRecord":
        data = json.loads(line)
        known = {f.name for f in fields(AccessRecord)}
        data = {k: v for k, v in data.items() if k in known}
        if "regions" in data:
            data["regions"] = tuple(data["regions"])
        return AccessRecord(**data)


def write_trace(records, path) -> int:
    """Write records to a versioned JSONL file; returns the count written."""
    count = 0
    with open(path, "w") as fh:
        fh.write(json.dumps({"trace_format": TRACE_FORMAT_VERSION}))
        fh.write("\n")
        for record in records:
            fh.write(record.to_json())
            fh.write("\n")
            count += 1
    return count


def read_trace(path) -> list[AccessRecord]:
    """Read a JSONL trace file (with or without a version header)."""
    records = []
    with open(path) as fh:
        for index, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            if index == 0:
                header = json.loads(line)
                if isinstance(header, dict) and "trace_format" in header:
                    version = header["trace_format"]
                    if not isinstance(version, int) or version < 1:
                        raise ValueError(f"bad trace_format header: {version!r}")
                    continue  # versioned file: header consumed
                # Headerless version-1 file: the first line is a record.
            records.append(AccessRecord.from_json(line))
    return records
